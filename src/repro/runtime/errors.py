"""Typed failure taxonomy and retry classification.

The supervisor distinguishes *transient* failures — worth retrying with
backoff (a worker segfault, an OS hiccup, a hung process) — from
*deterministic* ones, where re-running the same cell with the same seed
can only fail the same way (bad arguments, numerical blow-ups).  The
classification lives here so the sweep layer, the fault-injection
harness and the tests all agree on it.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

__all__ = [
    "NumericalHealthError",
    "CellTimeoutError",
    "WidthLimitError",
    "width_limit_error",
    "classify_retryable",
]


class NumericalHealthError(RuntimeError):
    """A simulation produced NaN/Inf values or drifted off norm.

    Raised by the engine health guards (:mod:`repro.runtime.health`).
    Deterministic per-cell seeding means re-running the cell reproduces
    the blow-up, so the supervisor treats this as non-retryable.
    """


class CellTimeoutError(RuntimeError):
    """A cell exceeded its per-cell wall-clock budget.

    Hangs are usually environmental (a stuck worker, CPU contention),
    so the supervisor classifies them as retryable and recycles the
    process pool to reclaim the stuck worker.
    """


class WidthLimitError(ValueError):
    """A register is wider than the requested engine can represent.

    Raised uniformly — from the dense engines themselves, from service
    admission, and from sweep-config validation — instead of the raw
    ``MemoryError``/silent ``4**n`` blow-up a too-wide dense request
    used to produce.  As a ``ValueError`` subclass it is classified
    non-retryable: the same request can only fail the same way.

    Use :func:`width_limit_error` to build one with the standard
    actionable message.
    """

    def __init__(
        self, message: str, engine: str = "", limit: int = 0, requested: int = 0
    ) -> None:
        super().__init__(message)
        self.engine = engine
        self.limit = limit
        self.requested = requested


def width_limit_error(
    engine: str, limit: int, requested: int
) -> WidthLimitError:
    """The uniform width-cap failure, naming the cut escape hatch."""
    return WidthLimitError(
        f"{engine} is limited to {limit} qubits, got {requested} — "
        f"evaluate wide registers by cutting into fragments instead: "
        f"method=\"cut\" with max_fragment_qubits <= {limit} "
        f"(see docs/cutting.md)",
        engine=engine,
        limit=limit,
        requested=requested,
    )


#: Exception types whose re-execution is pointless: the same inputs
#: deterministically produce the same failure.
_NON_RETRYABLE = (
    NumericalHealthError,
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    NotImplementedError,
    ZeroDivisionError,
)

#: Exception types that are always worth another attempt.
_RETRYABLE = (
    CellTimeoutError,
    BrokenProcessPool,
    OSError,
    MemoryError,
)


def classify_retryable(exc: BaseException) -> bool:
    """True when ``exc`` is plausibly transient and worth retrying.

    Explicitly-transient types win over the deterministic set (e.g.
    ``TimeoutError`` is an ``OSError``); unknown exception types default
    to retryable — a wasted retry is cheaper than a lost sweep.
    """
    if isinstance(exc, _RETRYABLE):
        return True
    if isinstance(exc, _NON_RETRYABLE):
        return False
    return True
