"""Fault-tolerant execution of independent cells over a process pool.

``Supervisor`` replaces the bare ``pool.map`` pattern: cells are
submitted individually, so one slow or dying worker cannot take the
whole sweep down with it.  The recovery ladder, in order:

1. **Retry with backoff** — transient failures (see
   :func:`~repro.runtime.errors.classify_retryable`) are re-queued up to
   ``RetryPolicy.max_attempts`` times with exponential backoff.
2. **Per-cell timeout** — a cell past ``RetryPolicy.timeout`` seconds is
   charged a :class:`~repro.runtime.errors.CellTimeoutError` attempt and
   the pool is recycled (a hung worker cannot be cancelled, only
   killed); innocent in-flight cells are re-queued without charge.
3. **Pool respawn** — ``BrokenProcessPool`` (a worker segfaulted or was
   OOM-killed) kills and re-creates the pool, up to
   ``RetryPolicy.max_pool_respawns`` times.
4. **Serial degradation** — when the pool keeps breaking, remaining
   cells run in-process, serially.  Timeouts are not enforceable there
   (documented trade-off), but a deterministic workload still completes.

Cells that exhaust every rung are returned as structured
:class:`CellFailure` records instead of raising, so a sweep with a few
dead cells still completes, renders and serialises.

The worker callable must be a module-level function (picklable) taking
``(payload, attempt)``; the attempt number makes deterministic fault
injection (:mod:`repro.runtime.faults`) possible across processes.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .errors import CellTimeoutError, classify_retryable

__all__ = [
    "RetryPolicy",
    "CellFailure",
    "Supervisor",
    "run_supervised",
    "partition_weighted",
]


def partition_weighted(
    items: Sequence[Any],
    weights: Sequence[float],
    max_weight: float,
) -> List[List[Any]]:
    """Greedy in-order chunking of ``items`` under a weight ceiling.

    Consecutive items accumulate into one chunk until adding the next
    would push the chunk past ``max_weight``; an item heavier than the
    ceiling still gets a chunk of its own (work must not be dropped).
    Order is preserved — the batched sweep relies on this so a fused
    work group is a contiguous slice of the cell grid.
    """
    if len(items) != len(weights):
        raise ValueError(
            f"items ({len(items)}) and weights ({len(weights)}) "
            f"must have equal length"
        )
    if max_weight <= 0:
        raise ValueError(f"max_weight must be > 0, got {max_weight}")
    chunks: List[List[Any]] = []
    current: List[Any] = []
    load = 0.0
    for item, w in zip(items, weights):
        if w < 0:
            raise ValueError(f"negative weight {w} for item {item!r}")
        if current and load + w > max_weight:
            chunks.append(current)
            current, load = [], 0.0
        current.append(item)
        load += w
    if current:
        chunks.append(current)
    return chunks


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the supervisor's recovery ladder."""

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 10.0
    #: Per-cell wall-clock budget in seconds (None = unlimited).  Only
    #: enforced on the pooled path — a hung in-process cell cannot be
    #: interrupted from within.
    timeout: Optional[float] = None
    #: Pool re-creations tolerated before degrading to serial execution.
    max_pool_respawns: int = 2
    #: Backoff jitter fraction in [0, 1]: each delay is scattered over
    #: ``[delay * (1 - jitter), delay]`` so a herd of units retrying
    #: against one recovering worker desynchronises.  The scatter is
    #: *deterministic* — derived from ``(token, attempt)`` — so runs
    #: remain exactly reproducible.  0 (the default) keeps the legacy
    #: pure-exponential schedule.
    jitter: float = 0.0

    def backoff(self, attempt: int, token: Any = None) -> float:
        """Delay before re-running a cell that failed ``attempt`` times.

        ``token`` identifies the retrying unit (a cell key, a fabric
        unit id); with ``jitter`` enabled, distinct tokens spread over
        the jitter window while the same token always lands on the same
        delay.
        """
        if self.backoff_base <= 0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * _jitter_unit(token, attempt)
        return delay


def _jitter_unit(token: Any, attempt: int) -> float:
    """Deterministic uniform-ish sample in [0, 1) from (token, attempt)."""
    seed = f"{token!r}:{attempt}".encode()
    return int.from_bytes(hashlib.sha256(seed).digest()[:8], "big") / 2**64


@dataclass(frozen=True)
class CellFailure:
    """One cell that exhausted the recovery ladder."""

    key: Any
    error_type: str
    message: str
    traceback: str
    attempts: int
    retryable: bool


@dataclass
class _Pending:
    """A cell waiting to run (or re-run)."""

    key: Any
    payload: Any
    attempt: int = 1
    not_before: float = 0.0


def _format_exc(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


class Supervisor:
    """Run independent cells with retries, timeouts and pool recovery.

    Parameters
    ----------
    worker:
        Module-level callable ``worker(payload, attempt) -> result``.
    workers:
        Process count; ``<= 1`` runs everything in-process.
    retry:
        The :class:`RetryPolicy`; defaults to 3 attempts, no timeout.
    on_result:
        ``on_result(key, result, attempts)`` fired as each cell
        completes — the checkpoint hook.
    clock / sleep / pool_factory:
        Injection points for tests (fake time, fake executors).
    """

    #: Upper bound on one ``wait()`` call so timeout checks stay timely.
    _TICK = 0.25

    def __init__(
        self,
        worker: Callable[[Any, int], Any],
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        on_result: Optional[Callable[[Any, Any, int], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
    ) -> None:
        self.worker = worker
        self.workers = max(1, int(workers))
        self.retry = retry or RetryPolicy()
        self.on_result = on_result
        self.clock = clock
        self.sleep = sleep
        self._pool_factory = pool_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.workers)
        )
        #: Pool re-creations performed during the last :meth:`run`.
        self.pool_respawns = 0
        #: True when the last run degraded to serial execution.
        self.degraded_serial = False

    # ------------------------------------------------------------------
    def run(
        self, cells: Sequence[Tuple[Any, Any]]
    ) -> Tuple[Dict[Any, Any], List[CellFailure]]:
        """Execute every ``(key, payload)`` cell.

        Returns ``(results, failures)``: completed results by key, plus
        a structured record for every cell that exhausted its retries.
        Never raises for per-cell errors — only for genuinely fatal
        conditions (``KeyboardInterrupt``, ``SystemExit``).
        """
        queue: Deque[_Pending] = deque(
            _Pending(key, payload) for key, payload in cells
        )
        results: Dict[Any, Any] = {}
        failures: List[CellFailure] = []
        self.pool_respawns = 0
        self.degraded_serial = False
        if self.workers <= 1 or len(queue) <= 1:
            self._run_serial(queue, results, failures)
        else:
            self._run_pooled(queue, results, failures)
        return results, failures

    # ------------------------------------------------------------------
    def _success(self, item: _Pending, value: Any, results: dict) -> None:
        results[item.key] = value
        if self.on_result is not None:
            self.on_result(item.key, value, item.attempt)

    def _failure(
        self,
        item: _Pending,
        exc: BaseException,
        queue: Deque[_Pending],
        failures: List[CellFailure],
        charge: bool = True,
    ) -> None:
        """Requeue a failed cell with backoff, or record its failure."""
        if not charge:
            # An innocent bystander of a pool recycle: retry without
            # consuming one of its attempts.
            queue.appendleft(item)
            return
        retryable = classify_retryable(exc)
        if retryable and item.attempt < self.retry.max_attempts:
            delay = self.retry.backoff(item.attempt)
            queue.append(
                _Pending(
                    item.key,
                    item.payload,
                    attempt=item.attempt + 1,
                    not_before=self.clock() + delay,
                )
            )
            return
        failures.append(
            CellFailure(
                key=item.key,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=_format_exc(exc),
                attempts=item.attempt,
                retryable=retryable,
            )
        )

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        queue: Deque[_Pending],
        results: dict,
        failures: List[CellFailure],
    ) -> None:
        while queue:
            item = queue.popleft()
            delay = item.not_before - self.clock()
            if delay > 0:
                self.sleep(delay)
            try:
                value = self.worker(item.payload, item.attempt)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                self._failure(item, exc, queue, failures)
                continue
            self._success(item, value, results)

    # ------------------------------------------------------------------
    def _run_pooled(
        self,
        queue: Deque[_Pending],
        results: dict,
        failures: List[CellFailure],
    ) -> None:
        pool = self._pool_factory()
        # future -> (pending item, submit timestamp).  In-flight is kept
        # <= workers so submit time approximates start time and the
        # per-cell timeout measures actual runtime.
        inflight: Dict[Any, Tuple[_Pending, float]] = {}

        def recycle(current_pool):
            """Kill the pool; requeue innocents; respawn or go serial."""
            for _fut, (item, _t0) in inflight.items():
                queue.appendleft(item)
            inflight.clear()
            _kill_pool(current_pool)
            self.pool_respawns += 1
            if self.pool_respawns > self.retry.max_pool_respawns:
                return None
            return self._pool_factory()

        try:
            while queue or inflight:
                now = self.clock()
                # Submit every due cell up to pool capacity.
                while len(inflight) < self.workers:
                    item = _pop_due(queue, now)
                    if item is None:
                        break
                    try:
                        fut = pool.submit(self.worker, item.payload, item.attempt)
                    except BrokenProcessPool:
                        queue.appendleft(item)
                        pool = recycle(pool)
                        if pool is None:
                            self.degraded_serial = True
                            self._run_serial(queue, results, failures)
                            return
                        continue
                    inflight[fut] = (item, self.clock())

                if not inflight:
                    # Everything queued is backing off; sleep to the
                    # earliest eligible retry.
                    nxt = min(i.not_before for i in queue)
                    self.sleep(max(0.0, nxt - self.clock()))
                    continue

                done, _ = wait(
                    list(inflight),
                    timeout=self._wait_budget(inflight, queue),
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for fut in done:
                    item, _t0 = inflight.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        self._success(item, fut.result(), results)
                    else:
                        if isinstance(exc, BrokenProcessPool):
                            broken = True
                        self._failure(item, exc, queue, failures)

                if self.retry.timeout is not None:
                    now = self.clock()
                    hung = [
                        fut
                        for fut, (_item, t0) in inflight.items()
                        if now - t0 > self.retry.timeout
                    ]
                    for fut in hung:
                        item, t0 = inflight.pop(fut)
                        self._failure(
                            item,
                            CellTimeoutError(
                                f"cell {item.key!r} exceeded "
                                f"{self.retry.timeout:g}s "
                                f"(attempt {item.attempt})"
                            ),
                            queue,
                            failures,
                        )
                    if hung:
                        # The hung workers cannot be reclaimed any other
                        # way — recycle the whole pool.
                        broken = True

                if broken:
                    pool = recycle(pool)
                    if pool is None:
                        self.degraded_serial = True
                        self._run_serial(queue, results, failures)
                        return
        finally:
            _kill_pool(pool)

    def _wait_budget(
        self, inflight: dict, queue: Deque[_Pending]
    ) -> Optional[float]:
        """How long one ``wait()`` may block before we must re-check."""
        budget = self._TICK if self.retry.timeout is not None else None
        if queue and len(inflight) < self.workers:
            # A backoff retry may become due before anything finishes.
            now = self.clock()
            due_in = max(0.0, min(i.not_before for i in queue) - now)
            budget = due_in if budget is None else min(budget, due_in)
            budget = max(budget, 0.01)
        return budget


def _pop_due(queue: Deque[_Pending], now: float) -> Optional[_Pending]:
    """Remove and return the first cell whose backoff has elapsed."""
    for i, item in enumerate(queue):
        if item.not_before <= now:
            del queue[i]
            return item
    return None


def _kill_pool(pool) -> None:
    """Terminate a pool's workers and release it, tolerating any state."""
    if pool is None:
        return
    try:
        procs = list((getattr(pool, "_processes", None) or {}).values())
    except Exception:
        procs = []
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        try:
            pool.shutdown(wait=False)
        except Exception:
            pass


def run_supervised(
    worker: Callable[[Any, int], Any],
    cells: Sequence[Tuple[Any, Any]],
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[Any, Any, int], None]] = None,
) -> Tuple[Dict[Any, Any], List[CellFailure]]:
    """One-shot convenience wrapper around :class:`Supervisor`."""
    return Supervisor(
        worker, workers=workers, retry=retry, on_result=on_result
    ).run(cells)
