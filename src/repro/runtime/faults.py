"""Deterministic fault injection for exercising recovery paths.

Chaos testing a fault-tolerant runtime needs faults that are *exactly*
reproducible: the same cell fails the same way on the same attempt,
every run, in every process.  Randomised fault injection can't prove a
recovery path works — a deterministic plan can.

A :class:`FaultPlan` maps cell keys to :class:`FaultSpec` entries; the
sweep worker calls :func:`inject` at the top of each cell with the
attempt number the supervisor passed in.  Because the decision depends
only on ``(key, attempt)``, it is consistent across worker processes
with no shared state.

Fault kinds
-----------
``raise``
    Raise :class:`InjectedFault` (a transient, retryable error).
``crash``
    ``os._exit`` the worker process — the supervisor sees
    ``BrokenProcessPool`` and must respawn the pool.  In the main
    process (serial-degraded execution) this softens to ``raise`` so
    an injected fault can never kill the harness itself.
``hang``
    Sleep past any sane per-cell timeout — exercises timeout detection
    and pool recycling.
``nan``
    Return ``True`` so the caller poisons its numeric output with NaN —
    exercises the numerical-health guards end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "inject",
    "CRASH_EXIT_CODE",
    "WorkerFaultSpec",
    "FabricFaultPlan",
]

#: Exit status used by ``crash`` faults (recognisable in worker logs).
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A deliberately injected, transient (retryable) failure."""


@dataclass(frozen=True)
class FaultSpec:
    """What to inject at one cell.

    ``attempts`` bounds the injection: fire on attempt numbers ``<=
    attempts`` (so ``attempts=1`` fails only the first try, letting a
    retry succeed), or on every attempt when negative (a *permanent*
    fault — the cell must surface as a failure record).
    """

    kind: str  # "raise" | "crash" | "hang" | "nan"
    attempts: int = 1
    hang_seconds: float = 3600.0

    _KINDS = ("raise", "crash", "hang", "nan")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )

    def active(self, attempt: int) -> bool:
        """Whether this fault fires on the given (1-based) attempt."""
        return self.attempts < 0 or attempt <= self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """Cell key -> fault to inject there.  Empty plan = no faults."""

    specs: Mapping[Any, FaultSpec] = field(default_factory=dict)

    def for_cell(self, key: Any) -> Optional[FaultSpec]:
        return self.specs.get(key)

    def __bool__(self) -> bool:
        return bool(self.specs)


def inject(spec: Optional[FaultSpec], key: Any, attempt: int) -> bool:
    """Execute ``spec`` for ``key`` on this ``attempt``.

    Returns True iff the caller should poison its output with NaN (the
    ``nan`` kind); raises/crashes/hangs for the other kinds; returns
    False when no fault applies.
    """
    if spec is None or not spec.active(attempt):
        return False
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected transient failure at cell {key!r} (attempt {attempt})"
        )
    if spec.kind == "crash":
        if multiprocessing.parent_process() is None:
            # Never kill the host process: when the supervisor has
            # degraded to in-process execution, a crash fault softens to
            # a (still retryable) raise so the harness survives.
            raise InjectedFault(
                f"injected crash at cell {key!r} ran in the main process "
                f"(attempt {attempt})"
            )
        # Bypass all cleanup: indistinguishable from a segfault/OOM kill.
        os._exit(CRASH_EXIT_CODE)
    if spec.kind == "hang":
        time.sleep(spec.hang_seconds)
        raise InjectedFault(
            f"injected hang at cell {key!r} outlived its {spec.hang_seconds}s"
        )
    return True  # "nan"


# ----------------------------------------------------------------------
# Worker-level faults for the distributed sweep fabric
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerFaultSpec:
    """A deterministic fault pinned to one fabric worker.

    Faults trigger on the worker's *dispatch counter* — the Nth work
    request routed to that worker fires the fault — so runs reproduce
    exactly regardless of wall-clock timing.

    ``kill``
        The worker dies: every request from ``after_units`` on fails
        with a connection error, forever (the remote-process-crash
        shape; the real-process variant is ``repro-fabric-worker
        --kill-after-units``).
    ``partition``
        A transient network partition: requests in the window
        ``[after_units, after_units + duration)`` fail with connection
        errors, then the worker is reachable again.
    ``slow``
        A straggler: every request from ``after_units`` on is delayed
        by ``slow_seconds`` before it is sent — exercises lease
        timeouts and work-stealing without failing anything.
    """

    kind: str  # "kill" | "partition" | "slow"
    after_units: int = 1
    #: Requests affected by a partition (< 0 = forever); ignored for
    #: ``kill`` (always forever) and ``slow`` (always from trigger on).
    duration: int = -1
    slow_seconds: float = 0.25

    _KINDS = ("kill", "partition", "slow")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )
        if self.after_units < 1:
            raise ValueError("after_units is 1-based and must be >= 1")

    def blocks(self, dispatch: int) -> bool:
        """Whether the ``dispatch``-th (1-based) request must fail."""
        if self.kind == "slow" or dispatch < self.after_units:
            return False
        if self.kind == "kill" or self.duration < 0:
            return True
        return dispatch < self.after_units + self.duration

    def delay(self, dispatch: int) -> float:
        """Injected latency (seconds) before the ``dispatch``-th request."""
        if self.kind == "slow" and dispatch >= self.after_units:
            return self.slow_seconds
        return 0.0


@dataclass(frozen=True)
class FabricFaultPlan:
    """Worker address -> fault to inject there.  Empty plan = no faults.

    Applied on the coordinator side of the fabric transport, so chaos
    runs can cover worker loss, partitions and stragglers without
    spawning (and killing) real processes.
    """

    specs: Mapping[str, WorkerFaultSpec] = field(default_factory=dict)

    def for_worker(self, address: str) -> Optional[WorkerFaultSpec]:
        return self.specs.get(address)

    def __bool__(self) -> bool:
        return bool(self.specs)
