"""Runtime determinism sanitizer (``REPRO_SANITIZER=1``).

The static DET rules prove no *banned construct* appears in a result
path; the sanitizer proves the *streams themselves* replay.  With the
flag on, the engines, the fused scheduler, the service executor, and
the sweep driver hash what they produce into a trace of
``(stage, key, digest)`` events:

* ``counts``  — the sampled Counts of one ``simulate_counts`` call,
  keyed by the active scope (the request content key in the service,
  the cell key in a sweep).
* ``task``    — one fused-scheduler task's outcome array and the RNG
  bit-generator state after sampling it, keyed by ``task.key``.
* ``point``   — one stored sweep :class:`PointResult`, keyed by
  ``(rate, depth)``.
* ``chunk``   — one simulated state-buffer chunk (geometry-tagged;
  excluded from cross-path comparison by default, since chunk shapes
  legitimately differ between batching modes and memory budgets).

Two runs of the same work through different machinery — thread-tier
vs process-tier executors, ``batching="cell"`` vs ``"group"``, a local
sweep vs a fabric-coordinated one — must produce traces whose portable
stages compare equal; :func:`compare_traces` reports every divergence.
Events recorded inside :func:`capture` (the executor wraps each
payload in one) are returned to the caller instead of accumulating
globally, so worker results carry their own evidence across process
boundaries.

The hooks are a few lines each and cost one hash per event; with the
flag off (the default) every entry point is a single boolean check.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import asdict, is_dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .envutil import env_flag

__all__ = [
    "capture",
    "clear_trace",
    "compare_traces",
    "enabled",
    "force",
    "payload_digest",
    "record",
    "trace_digest",
    "trace_events",
    "trace_scope",
    "PORTABLE_STAGES",
]

#: Stages compared across execution paths; anything else (``chunk``) is
#: diagnostic-only.
PORTABLE_STAGES = ("counts", "task", "point")

#: One trace event: (stage, key, digest).
Event = Tuple[str, str, str]

_FORCED: Optional[bool] = None
_EVENTS: List[Event] = []
_LOCK = threading.Lock()


class _Local(threading.local):
    def __init__(self) -> None:
        self.scopes: List[str] = []
        self.captures: List[List[Event]] = []


_LOCAL = _Local()


def enabled() -> bool:
    """Whether the sanitizer is on (env flag, or :func:`force`)."""
    if _FORCED is not None:
        return _FORCED
    try:
        return env_flag("REPRO_SANITIZER", False)
    except ValueError:
        return False


def force(value: Optional[bool]) -> None:
    """Override the env flag (tests); ``None`` restores env control."""
    global _FORCED
    _FORCED = value


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------

def _feed(h: "hashlib._Hash", obj: Any) -> None:
    # np is imported lazily so importing the audit package never pulls
    # numpy for CLI paths that don't simulate.
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, str)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        h.update(f"f:{obj.hex()};".encode())
    elif isinstance(obj, bytes):
        h.update(b"b:")
        h.update(obj)
        h.update(b";")
    elif isinstance(obj, np.ndarray):
        h.update(f"nd:{obj.dtype.str}:{obj.shape};".encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _feed(h, obj.item())
    elif isinstance(obj, (list, tuple)):
        h.update(f"seq:{len(obj)}[".encode())
        for item in obj:
            _feed(h, item)
        h.update(b"]")
    elif isinstance(obj, dict):
        h.update(f"map:{len(obj)}{{".encode())
        for k in sorted(obj, key=repr):
            _feed(h, k)
            h.update(b"=")
            _feed(h, obj[k])
        h.update(b"}")
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__name__};".encode())
        _feed(h, asdict(obj))
    elif hasattr(obj, "as_dict"):
        h.update(f"obj:{type(obj).__name__};".encode())
        _feed(h, obj.as_dict())
    else:
        h.update(f"repr:{obj!r};".encode())


def payload_digest(payload: Any) -> str:
    """Short deterministic content hash of ``payload``.

    Canonicalises dicts (sorted keys), hashes numpy arrays by
    dtype/shape/bytes, floats by their exact hex form — so two equal
    payloads digest equal regardless of construction order, and one ULP
    of drift is a different trace.
    """
    h = hashlib.sha256()
    _feed(h, payload)
    return h.hexdigest()[:24]


def rng_digest(rng: Any) -> str:
    """Digest of a numpy Generator's bit-generator state."""
    return payload_digest(rng.bit_generator.state)


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------

@contextmanager
def trace_scope(key: str) -> Iterator[None]:
    """Set the default event key for the current thread."""
    _LOCAL.scopes.append(str(key))
    try:
        yield
    finally:
        _LOCAL.scopes.pop()


def record(stage: str, payload: Any, key: Optional[str] = None) -> None:
    """Record one event (no-op with the sanitizer off)."""
    if not enabled():
        return
    if key is None:
        key = _LOCAL.scopes[-1] if _LOCAL.scopes else ""
    event: Event = (stage, str(key), payload_digest(payload))
    if _LOCAL.captures:
        _LOCAL.captures[-1].append(event)
        return
    with _LOCK:
        _EVENTS.append(event)


@contextmanager
def capture() -> Iterator[List[Event]]:
    """Collect this thread's events into the yielded list.

    Worker entry points (the service executor payload) wrap their work
    in a capture and ship the list home with the result, which is how
    process-tier events cross the pickle boundary.
    """
    buf: List[Event] = []
    _LOCAL.captures.append(buf)
    try:
        yield buf
    finally:
        _LOCAL.captures.pop()


def merge_events(events: Sequence[Sequence[str]]) -> None:
    """Fold captured (possibly JSON-roundtripped) events into the trace."""
    if not events:
        return
    normalised = [(str(s), str(k), str(d)) for s, k, d in events]
    with _LOCK:
        _EVENTS.extend(normalised)


def trace_events() -> List[Event]:
    """Snapshot of the accumulated global trace."""
    with _LOCK:
        return list(_EVENTS)


def clear_trace() -> None:
    """Drop every accumulated event (start of a comparison run)."""
    with _LOCK:
        _EVENTS.clear()


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def _portable_multiset(
    events: Sequence[Event], stages: Sequence[str]
) -> Dict[Tuple[str, str], Dict[str, int]]:
    out: Dict[Tuple[str, str], Dict[str, int]] = {}
    for stage, key, digest in events:
        if stage not in stages:
            continue
        bucket = out.setdefault((stage, key), {})
        bucket[digest] = bucket.get(digest, 0) + 1
    return out


def trace_digest(
    events: Optional[Sequence[Event]] = None,
    stages: Sequence[str] = PORTABLE_STAGES,
) -> str:
    """One hash over the portable stages of a trace.

    Order-independent across (stage, key) groups — execution paths
    interleave work differently — but count-sensitive within a group.
    """
    if events is None:
        events = trace_events()
    return payload_digest(
        {
            f"{stage}|{key}": sorted(bucket.items())
            for (stage, key), bucket in _portable_multiset(
                events, stages
            ).items()
        }
    )


def compare_traces(
    a: Sequence[Event],
    b: Sequence[Event],
    stages: Sequence[str] = PORTABLE_STAGES,
) -> List[str]:
    """Human-readable divergences between two traces (empty = parity).

    Compares the multiset of digests per (stage, key): a missing key, an
    extra key, or any digest-count mismatch is reported.
    """
    ma = _portable_multiset(a, stages)
    mb = _portable_multiset(b, stages)
    problems: List[str] = []
    for group in sorted(set(ma) | set(mb)):
        stage, key = group
        da, db = ma.get(group), mb.get(group)
        if da is None:
            problems.append(f"{stage}[{key}]: only in second trace")
        elif db is None:
            problems.append(f"{stage}[{key}]: only in first trace")
        elif da != db:
            problems.append(
                f"{stage}[{key}]: digests differ "
                f"({sorted(da.items())} vs {sorted(db.items())})"
            )
    return problems
