"""Fault-tolerant execution runtime for long-running sweeps.

The pieces, bottom-up:

* :mod:`~repro.runtime.errors` — typed failures and the
  retryable/deterministic classification.
* :mod:`~repro.runtime.health` — NaN / norm-drift guards the simulation
  engines call on their final states.
* :mod:`~repro.runtime.checkpoint` — append-only JSONL journal of
  completed cells, keyed by a config fingerprint.
* :mod:`~repro.runtime.supervisor` — per-cell submission with retries,
  timeouts, ``BrokenProcessPool`` recovery and serial degradation.
* :mod:`~repro.runtime.faults` — deterministic crash/hang/NaN injection
  so every recovery path above is testable.

See ``docs/reliability.md`` for the end-to-end story.
"""

from .checkpoint import CheckpointJournal, config_fingerprint, locked_append
from .envutil import env_flag, env_float, env_mb_bytes
from .errors import CellTimeoutError, NumericalHealthError, classify_retryable
from .faults import (
    FabricFaultPlan,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerFaultSpec,
    inject,
)
from .health import check_finite, check_norms, check_trace, norm_tolerance
from .supervisor import (
    CellFailure,
    RetryPolicy,
    Supervisor,
    partition_weighted,
    run_supervised,
)

__all__ = [
    "CheckpointJournal",
    "config_fingerprint",
    "locked_append",
    "FabricFaultPlan",
    "WorkerFaultSpec",
    "CellTimeoutError",
    "NumericalHealthError",
    "classify_retryable",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "inject",
    "check_finite",
    "check_norms",
    "check_trace",
    "norm_tolerance",
    "CellFailure",
    "RetryPolicy",
    "Supervisor",
    "run_supervised",
    "partition_weighted",
    "env_flag",
    "env_float",
    "env_mb_bytes",
]
