"""Numerical-health guards shared by the simulation engines.

Long gate sequences can silently corrupt a state: a NaN introduced by a
bad amplitude propagates to every probability, and norm drift turns the
Born rule into a biased sampler.  quantumsim-style engines check these
invariants explicitly; here every engine validates its final state and
raises a typed :class:`~repro.runtime.errors.NumericalHealthError` that
the sweep supervisor classifies as non-retryable (the per-cell seeding
makes the blow-up deterministic).

Checks are O(state size) — negligible next to the evolution itself.
"""

from __future__ import annotations

import numpy as np

from .errors import NumericalHealthError

__all__ = [
    "NumericalHealthError",
    "norm_tolerance",
    "check_finite",
    "check_norms",
    "check_trace",
]


def norm_tolerance(dtype) -> float:
    """Acceptable norm drift for a state of ``dtype``.

    ``complex64`` accumulates ~1e-7 per kernel over hundreds of gates;
    ``complex128`` drift is far below either bound.
    """
    return 1e-3 if np.dtype(dtype).itemsize <= 8 else 1e-6


def check_finite(arr: np.ndarray, where: str) -> None:
    """Raise :class:`NumericalHealthError` on any NaN/Inf entry."""
    if not np.all(np.isfinite(arr)):
        raise NumericalHealthError(
            f"{where}: non-finite values in state "
            f"(shape {arr.shape}, dtype {arr.dtype})"
        )


def check_norms(state: np.ndarray, where: str, atol: float = None) -> None:
    """Validate a ``(B, 2**n)`` batch of pure states.

    Every row must be finite with ``| ||psi||^2 - 1 | <= atol``.
    """
    if atol is None:
        atol = norm_tolerance(state.dtype)
    check_finite(state, where)
    norms = np.einsum("bi,bi->b", state, state.conj()).real
    drift = np.abs(norms - 1.0)
    worst = int(np.argmax(drift))
    if drift[worst] > atol:
        raise NumericalHealthError(
            f"{where}: state norm drifted to {norms[worst]:.6g} "
            f"(|drift| {drift[worst]:.3g} > tolerance {atol:.3g}, "
            f"batch row {worst})"
        )


def check_trace(rho: np.ndarray, where: str, atol: float = 1e-6) -> None:
    """Validate a density matrix: finite entries, trace within ``atol`` of 1."""
    check_finite(rho, where)
    tr = float(np.real(np.trace(rho)))
    if abs(tr - 1.0) > atol:
        raise NumericalHealthError(
            f"{where}: density-matrix trace drifted to {tr:.6g} "
            f"(tolerance {atol:.3g})"
        )
