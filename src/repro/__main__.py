"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``          — package, scale, and engine-dispatch summary.
``table1``        — regenerate the paper's Table I and print it.
``fig3`` / ``fig4`` — run the figure panels at the current REPRO_SCALE
                    and print each ASCII panel (optionally save JSON).
``depth-profile`` — AQFT-vs-QFT fidelity per depth (paper §2).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_info(args) -> int:
    import numpy

    import repro
    from repro.experiments import SCALES, current_scale

    print(f"repro {repro.__version__} (numpy {numpy.__version__})")
    print(f"active scale: {current_scale()}")
    for s in SCALES.values():
        print(f"  available: {s}")
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments import render_table1, table1_counts

    print(render_table1(table1_counts()))
    return 0


def _cmd_figure(args, which: str) -> int:
    from repro.experiments import (
        current_scale,
        render_panel,
        run_figure,
        save_sweep,
    )
    from repro.experiments.paper import fig3_configs, fig4_configs

    scale = current_scale()
    configs = (fig3_configs if which == "fig3" else fig4_configs)(scale)
    if args.panel:
        configs = [c for c in configs if c.label in args.panel]
        if not configs:
            print(f"no panel matches {args.panel}", file=sys.stderr)
            return 2
    results = run_figure(configs, progress=print if args.verbose else None)
    for label, res in results.items():
        print()
        print(render_panel(res))
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            save_sweep(res, out / f"{label}.json")
            print(f"[saved {out / (label + '.json')}]")
    return 0


def _cmd_depth_profile(args) -> int:
    from repro.analysis import aqft_fidelity_profile, paper_depth_label

    prof = aqft_fidelity_profile(args.n, trials=args.trials)
    print(f"AQFT fidelity profile, n={args.n}:")
    for d, f in prof.items():
        bar = "#" * int(round(40 * f))
        print(f"  d={paper_depth_label(d, args.n):>4}  {f:.4f} {bar}")
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy approximate quantum Fourier arithmetic "
        "(IPPS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and scale summary")
    sub.add_parser("table1", help="regenerate Table I")
    for which in ("fig3", "fig4"):
        p = sub.add_parser(which, help=f"run {which} panels at REPRO_SCALE")
        p.add_argument("--panel", nargs="*", help="labels, e.g. fig3a fig3b")
        p.add_argument("--out", help="directory for JSON results")
        p.add_argument("-v", "--verbose", action="store_true")
    p = sub.add_parser("depth-profile", help="AQFT fidelity per depth")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--trials", type=int, default=8)

    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command in ("fig3", "fig4"):
        return _cmd_figure(args, args.command)
    if args.command == "depth-profile":
        return _cmd_depth_profile(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _entry() -> int:
    """Console-script entry point with SIGPIPE-friendly exit."""
    try:
        return main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0


if __name__ == "__main__":
    sys.exit(_entry())
