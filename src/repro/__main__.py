"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``          — package, scale, and engine-dispatch summary.
``table1``        — regenerate the paper's Table I and print it.
``fig3`` / ``fig4`` — run the figure panels at the current REPRO_SCALE
                    and print each ASCII panel (optionally save JSON).
``sweep``         — run one ad-hoc (rate x depth) sweep, locally or
                    distributed over a fabric worker fleet
                    (``--fabric workers.txt``; docs/distributed.md).
``depth-profile`` — AQFT-vs-QFT fidelity per depth (paper §2).
``lint``          — static analysis: lint QASM files or the paper
                    corpus, optionally verifying transpiled circuits
                    symbolically against their logical sources
                    (exit 1 on findings at/above the threshold).
``cache-stats``   — compile / kernel / program-LRU cache counters for
                    this process, or — with ``--url`` — the ``/stats``
                    document of a running ``repro-serve`` instance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_info(args) -> int:
    import numpy

    import repro
    from repro.experiments import SCALES, current_scale

    print(f"repro {repro.__version__} (numpy {numpy.__version__})")
    print(f"active scale: {current_scale()}")
    for s in SCALES.values():
        print(f"  available: {s}")
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments import render_table1, table1_counts

    print(render_table1(table1_counts()))
    return 0


def _cmd_figure(args, which: str) -> int:
    from repro.experiments import (
        current_scale,
        render_panel,
        run_figure,
        save_sweep,
    )
    from repro.experiments.paper import fig3_configs, fig4_configs
    from repro.runtime import RetryPolicy

    scale = current_scale()
    configs = (fig3_configs if which == "fig3" else fig4_configs)(scale)
    if args.panel:
        configs = [c for c in configs if c.label in args.panel]
        if not configs:
            print(f"no panel matches {args.panel}", file=sys.stderr)
            return 2
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.resume:
        # --resume with no explicit dir uses the conventional location,
        # so `python -m repro fig3 --resume` continues an interrupted run.
        checkpoint_dir = "checkpoints"
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        timeout=args.timeout,
    )
    results = run_figure(
        configs,
        workers=args.workers,
        progress=print if args.verbose else None,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
        retry=retry,
    )
    failed_cells = 0
    for label, res in results.items():
        print()
        print(render_panel(res))
        failed_cells += len(res.failures)
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            save_sweep(res, out / f"{label}.json")
            print(f"[saved {out / (label + '.json')}]")
    if failed_cells:
        print(
            f"[warning] {failed_cells} cell(s) failed permanently; "
            f"partial results above (re-run with --resume to retry them)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import render_panel, save_sweep
    from repro.experiments.config import SweepConfig
    from repro.experiments.sweep import run_sweep
    from repro.runtime import RetryPolicy

    try:
        depths = tuple(
            None if d in ("full", "none") else int(d) for d in args.depths
        )
    except ValueError:
        print(f"--depths takes integers or 'full', got {args.depths}",
              file=sys.stderr)
        return 2
    config = SweepConfig(
        operation=args.operation,
        n=args.n,
        m=args.m,
        orders=(1, 1),
        error_axis=args.error_axis,
        error_rates=tuple(args.rates),
        depths=depths,
        instances=args.instances,
        shots=args.shots,
        trajectories=args.trajectories,
        seed=args.seed,
        method=args.method,
        backend=args.backend,
        batching=args.batching,
        label=args.label,
        max_fragment_qubits=args.max_fragment_qubits,
    )
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        timeout=args.timeout,
        jitter=args.jitter,
    )
    result = run_sweep(
        config,
        workers=args.workers,
        progress=print if args.verbose else None,
        checkpoint=args.checkpoint,
        resume=args.resume,
        retry=retry,
        fabric=args.fabric,
        lease_timeout=args.lease_timeout,
    )
    print(render_panel(result))
    if args.out:
        save_sweep(result, Path(args.out))
        print(f"[saved {args.out}]")
    if result.failures:
        for f in result.failures:
            print(f"[FAILED] {f}", file=sys.stderr)
        return 1
    return 0


def _cmd_depth_profile(args) -> int:
    from repro.analysis import aqft_fidelity_profile, paper_depth_label

    prof = aqft_fidelity_profile(args.n, trials=args.trials)
    print(f"AQFT fidelity profile, n={args.n}:")
    for d, f in prof.items():
        bar = "#" * int(round(40 * f))
        print(f"  d={paper_depth_label(d, args.n):>4}  {f:.4f} {bar}")
    return 0


def _cmd_lint(args) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.lint import LintContext, lint_circuit, merge_reports
    from repro.lint.corpus import corpus_cases, lint_corpus, verify_corpus
    from repro.lint.rules import rule_catalog
    from repro.transpile.basis import IBM_BASIS

    if args.list_rules:
        for r in rule_catalog():
            print(f"{r.rule_id}  {r.name:<24} {r.severity}  {r.description}")
        return 0
    if not args.files and not args.corpus:
        print("nothing to lint: pass QASM files or --corpus", file=sys.stderr)
        return 2

    reports = []
    verify_failures = 0
    context = LintContext(
        basis=IBM_BASIS if args.basis else None,
        aqft_depth=args.aqft_depth,
        expect_optimized=args.expect_optimized,
    )
    for path in args.files or ():
        try:
            circuit = from_qasm(Path(path).read_text())
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot load: {exc}", file=sys.stderr)
            return 2
        circuit.name = path
        reports.append(lint_circuit(circuit, context))
    if args.corpus:
        cases = list(corpus_cases())
        reports.append(lint_corpus(cases))
        if args.verify:
            for case, result in verify_corpus(cases):
                if result.verdict != "equivalent":
                    verify_failures += 1
                    print(
                        f"equivalence FAILED [{result.verdict}/"
                        f"{result.method}] {case.name}: {result.detail}",
                        file=sys.stderr,
                    )
            if not verify_failures:
                print(
                    f"equivalence: {len(cases)} corpus circuits verified "
                    f"(symbolic)",
                    file=sys.stderr,
                )
    report = merge_reports(reports)
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text())
    ok = report.ok(strict=args.strict) and verify_failures == 0
    return 0 if ok else 1


def _cmd_audit(args) -> int:
    from repro import __version__
    from repro.audit import (
        RULES,
        audit_paths,
        discover_modules,
        audit_modules,
        used_suppression_counts,
        SUPPRESSION_BUDGET,
        rule_descriptions,
    )

    if args.list_rules:
        for r in sorted(RULES.values(), key=lambda r: r.rule_id):
            print(
                f"{r.rule_id}  {r.name:<28} {r.severity}  {r.description}"
            )
        return 0

    src_root = Path(args.src_root).resolve() if args.src_root else None
    modules = discover_modules(src_root)
    report = audit_modules(modules)
    if args.json or args.sarif:
        print(
            report.to_json(
                tool_version=__version__,
                tool_name="repro-arith audit",
                rule_descriptions=rule_descriptions(),
            )
        )
    else:
        print(report.to_text())
        used = used_suppression_counts(modules)
        if used:
            budget = ", ".join(
                f"{rid}={used[rid]}/{SUPPRESSION_BUDGET.get(rid, 0)}"
                for rid in sorted(used)
            )
            print(f"suppressions used: {budget}")
        print(f"modules audited: {len(modules)}")
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_cache_stats(args) -> int:
    import json as _json

    from repro.service.stats import cache_stats_snapshot, render_cache_stats

    if args.url:
        from urllib.parse import urlparse

        from repro.service.client import ServiceClient, ServiceError

        parsed = urlparse(args.url)
        if not parsed.hostname:
            print(f"cannot parse --url {args.url!r}", file=sys.stderr)
            return 2
        client = ServiceClient(parsed.hostname, parsed.port or 8777)
        try:
            snapshot = client.stats()
        except (ServiceError, OSError) as exc:
            print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
            return 2
    else:
        snapshot = cache_stats_snapshot()
    if args.json:
        print(_json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    else:
        print(render_cache_stats(snapshot))
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy approximate quantum Fourier arithmetic "
        "(IPPS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and scale summary")
    sub.add_parser("table1", help="regenerate Table I")
    for which in ("fig3", "fig4"):
        p = sub.add_parser(which, help=f"run {which} panels at REPRO_SCALE")
        p.add_argument("--panel", nargs="*", help="labels, e.g. fig3a fig3b")
        p.add_argument("--out", help="directory for JSON results")
        p.add_argument("-v", "--verbose", action="store_true")
        p.add_argument(
            "--resume",
            action="store_true",
            help="resume from the checkpoint journal of an interrupted run",
        )
        p.add_argument(
            "--checkpoint-dir",
            help="cell-level journal directory (default: 'checkpoints' "
            "when --resume is given, else no checkpointing)",
        )
        p.add_argument(
            "--workers", type=int, help="worker processes (default: cores-1)"
        )
        p.add_argument(
            "--timeout",
            type=float,
            help="per-cell timeout in seconds (default: unlimited)",
        )
        p.add_argument(
            "--max-attempts",
            type=int,
            default=3,
            help="attempts per cell before recording it as failed",
        )
    p = sub.add_parser(
        "sweep",
        help="run one (rate x depth) sweep, locally or over a fabric",
        description="Run a single sweep panel with explicit knobs. "
        "With --fabric, cells are dispatched to a fleet of "
        "repro-fabric-worker / repro-serve processes (registry file or "
        "comma-separated host:port list); the sweep degrades to local "
        "execution when no worker is reachable, with bit-identical "
        "results either way.",
    )
    p.add_argument("--operation", choices=("add", "mul"), default="add")
    p.add_argument("-n", type=int, default=3, help="first register width")
    p.add_argument("-m", type=int, default=3, help="second register width")
    p.add_argument("--error-axis", choices=("1q", "2q"), default="2q")
    p.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.05],
        help="error rates to sweep",
    )
    p.add_argument(
        "--depths", nargs="+", default=["2", "full"],
        help="AQFT depths: integers or 'full'",
    )
    p.add_argument("--instances", type=int, default=2)
    p.add_argument("--shots", type=int, default=64)
    p.add_argument("--trajectories", type=int, default=4)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument(
        "--batching", choices=("off", "cell", "group"), default="off"
    )
    from repro.sim.methods import METHODS, method_help

    p.add_argument(
        "--method",
        choices=METHODS,
        default="trajectory",
        help=f"simulation engine per cell: {method_help()}",
    )
    p.add_argument(
        "--max-fragment-qubits",
        type=int,
        default=0,
        help="method=cut: fragment-width budget for the cut searcher "
        "(0 = subsystem default; see docs/cutting.md)",
    )
    p.add_argument(
        "--backend",
        choices=("numpy64", "numpy32", "cupy64", "cupy32"),
        default="",
        help="array backend / precision tier (default: REPRO_BACKEND "
        "or numpy64; GPU tiers degrade gracefully to NumPy)",
    )
    p.add_argument("--label", default="sweep")
    p.add_argument(
        "--workers", type=int, help="local worker processes (default: cores-1)"
    )
    p.add_argument(
        "--fabric",
        help="worker fleet: registry file or comma-separated host:port list",
    )
    p.add_argument(
        "--lease-timeout", type=float, default=60.0,
        help="seconds before a dispatched unit is reassigned",
    )
    p.add_argument("--checkpoint", help="JSONL journal file for resume")
    p.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="discard an existing checkpoint journal instead of resuming",
    )
    p.add_argument("--timeout", type=float, help="per-cell timeout (seconds)")
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument(
        "--jitter", type=float, default=0.0,
        help="retry backoff jitter fraction in [0, 1)",
    )
    p.add_argument("--out", help="JSON result file")
    p.add_argument("-v", "--verbose", action="store_true")

    p = sub.add_parser("depth-profile", help="AQFT fidelity per depth")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--trials", type=int, default=8)

    p = sub.add_parser(
        "lint",
        help="static analysis over QASM files or the paper corpus",
        description="Run the circuit linter (rules REP001..) and, with "
        "--verify, the symbolic phase-polynomial equivalence checker. "
        "Exits 1 when errors (or, with --strict, warnings) are found.",
    )
    p.add_argument("files", nargs="*", help="OpenQASM 2.0 files to lint")
    p.add_argument(
        "--corpus",
        action="store_true",
        help="lint every transpiled paper circuit at the current REPRO_SCALE",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="with --corpus: also verify transpiled == logical symbolically",
    )
    p.add_argument(
        "--basis",
        action="store_true",
        help="for file inputs: enforce the IBM basis {id,x,rz,sx,cx}",
    )
    p.add_argument(
        "--aqft-depth",
        type=int,
        help="for file inputs: flag rotations below pi/2^d",
    )
    p.add_argument(
        "--expect-optimized",
        action="store_true",
        help="for file inputs: enable the missed-optimization rules",
    )
    p.add_argument(
        "--json", action="store_true", help="SARIF-ish JSON instead of text"
    )
    p.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )

    p = sub.add_parser(
        "audit",
        help="determinism & concurrency audit of the repro source itself",
        description="Run the codebase audit (DET/ASYNC/RACE/SUP rule "
        "families) over src/repro: seed discipline, event-loop hygiene, "
        "and shared-state locking, with the # repro: allow[...] "
        "suppression budget enforced. Exits 1 when errors (or, with "
        "--strict, warnings) survive suppression.",
    )
    p.add_argument(
        "--src-root",
        help="audit an alternate source tree (default: the installed "
        "repro package's src/ directory)",
    )
    p.add_argument(
        "--json", action="store_true", help="SARIF 2.1.0 JSON instead of text"
    )
    p.add_argument(
        "--sarif",
        action="store_true",
        help="alias for --json (the JSON output is SARIF 2.1.0)",
    )
    p.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )

    p = sub.add_parser(
        "cache-stats",
        help="compile/kernel/program cache counters (local or remote)",
        description="Print the cache counters shared with the service's "
        "/stats endpoint: the two-level compile cache, the kernel LRU, "
        "and the runner's program/circuit memos.",
    )
    p.add_argument(
        "--url",
        help="fetch /stats from a running repro-serve instance "
        "(e.g. http://127.0.0.1:8777) instead of this process",
    )
    p.add_argument(
        "--json", action="store_true", help="JSON instead of aligned text"
    )

    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command in ("fig3", "fig4"):
        return _cmd_figure(args, args.command)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "depth-profile":
        return _cmd_depth_profile(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "cache-stats":
        return _cmd_cache_stats(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _entry() -> int:
    """Console-script entry point with SIGPIPE-friendly exit."""
    try:
        return main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0


if __name__ == "__main__":
    sys.exit(_entry())
