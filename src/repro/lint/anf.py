"""Algebraic normal forms over GF(2) — the shared symbolic substrate.

A boolean function is represented as a ``frozenset`` of monomials; a
monomial is a ``frozenset`` of variable ids whose AND it denotes, and
the empty monomial is the constant 1.  XOR is symmetric difference,
AND distributes monomial-by-monomial.  The representation is canonical,
so equality of functions is set equality.

Variables are plain integers.  The path-sum engine allocates circuit
input variables first and Hadamard path variables after them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "Monomial",
    "ANF",
    "anf_zero",
    "anf_one",
    "anf_var",
    "anf_xor",
    "anf_and",
    "anf_const",
    "anf_vars",
    "anf_substitute",
    "anf_is_const",
    "anf_split",
    "anf_eval",
    "anf_render",
]

Monomial = FrozenSet[int]
ANF = FrozenSet[Monomial]

_ZERO: ANF = frozenset()
_ONE: ANF = frozenset({frozenset()})


def anf_zero() -> ANF:
    """The constant-0 function."""
    return _ZERO


def anf_one() -> ANF:
    """The constant-1 function."""
    return _ONE


def anf_const(bit: int) -> ANF:
    """The constant function for ``bit`` in {0, 1}."""
    return _ONE if bit & 1 else _ZERO


def anf_var(i: int) -> ANF:
    """The projection function ``x_i``."""
    return frozenset({frozenset({i})})


def anf_xor(*fs: ANF) -> ANF:
    """GF(2) sum (XOR) of any number of functions."""
    acc: set = set()
    for f in fs:
        acc.symmetric_difference_update(f)
    return frozenset(acc)


def anf_and(a: ANF, b: ANF) -> ANF:
    """GF(2) product (AND): monomials multiply pairwise, XOR-accumulated."""
    acc: set = set()
    for m1 in a:
        for m2 in b:
            acc.symmetric_difference_update((m1 | m2,))
    return frozenset(acc)


def anf_vars(f: ANF) -> FrozenSet[int]:
    """Every variable appearing in ``f``."""
    out: set = set()
    for m in f:
        out.update(m)
    return frozenset(out)


def anf_is_const(f: ANF) -> bool:
    """Whether ``f`` is 0 or 1."""
    return f == _ZERO or f == _ONE


def anf_split(f: ANF, var: int) -> Tuple[ANF, ANF]:
    """Cofactor split ``f = var*A xor B`` with ``A``, ``B`` free of ``var``.

    Returns ``(A, B)``.
    """
    a: set = set()
    b: set = set()
    for m in f:
        if var in m:
            a.symmetric_difference_update((m - {var},))
        else:
            b.symmetric_difference_update((m,))
    return frozenset(a), frozenset(b)


def anf_substitute(f: ANF, var: int, replacement: ANF) -> ANF:
    """Substitute ``var := replacement`` inside ``f``."""
    a, b = anf_split(f, var)
    if not a:
        return f
    return anf_xor(anf_and(a, replacement), b)


def anf_eval(f: ANF, assignment: Dict[int, int]) -> int:
    """Evaluate ``f`` on a full truth assignment (testing aid)."""
    total = 0
    for m in f:
        prod = 1
        for v in m:
            prod &= assignment.get(v, 0)
            if not prod:
                break
        total ^= prod
    return total


def anf_render(f: ANF) -> str:
    """Readable rendering, e.g. ``x0 ^ x1&x3 ^ 1``."""
    if not f:
        return "0"
    parts = []
    for m in sorted(f, key=lambda m: (len(m), sorted(m))):
        parts.append("&".join(f"x{v}" for v in sorted(m)) if m else "1")
    return " ^ ".join(parts)
