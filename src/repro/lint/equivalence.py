"""Circuit equivalence checking: symbolic first, unitary as fallback.

:func:`check_equivalence` decides whether a candidate circuit (e.g. the
output of a transpiler pass) implements the same unitary as a reference
circuit, up to global phase and an optional final wire permutation (the
``final_layout`` of a routed circuit).

The primary engine is the phase-polynomial path sum of
:mod:`repro.lint.phasepoly`: the candidate is applied forward and the
reference inverse on top, and the composite must reduce to the
identity.  This is exact and runs in polynomial time on the
{CX, RZ/P, X, SWAP, H}-dominated circuits this repository emits — no
:math:`2^n` unitary is ever built, so it scales to the paper's full
16-qubit corpus.  When the reduction gets stuck (exotic gate mixes) the
checker falls back to brute-force unitary comparison, but only for
circuits of at most ``unitary_qubit_threshold`` qubits; wider circuits
come back ``"unknown"`` rather than silently unverified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from .phasepoly import PathSum, UnsupportedGateError

__all__ = ["EquivalenceResult", "check_equivalence"]

#: Largest width at which the unitary fallback may be used.
DEFAULT_UNITARY_THRESHOLD = 5


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of one equivalence check.

    ``verdict`` is ``"equivalent"``, ``"not_equivalent"`` or
    ``"unknown"``; ``method`` records which engine decided
    (``"structural"``, ``"symbolic"`` or ``"unitary"``).
    """

    verdict: str
    method: str
    detail: str = ""

    @property
    def is_equivalent(self) -> bool:
        """True only for a positive verdict."""
        return self.verdict == "equivalent"

    def __bool__(self) -> bool:
        return self.is_equivalent


def _measurement_signature(
    circuit: QuantumCircuit, qubit_map: Dict[int, int]
) -> Tuple[Tuple[int, int], ...]:
    """Sorted (mapped qubit, clbit) pairs of every measure op."""
    sig = []
    for instr in circuit:
        if instr.gate.name == "measure":
            q = qubit_map.get(instr.qubits[0], instr.qubits[0])
            sig.append((q, instr.clbits[0] if instr.clbits else -1))
    return tuple(sorted(sig))


def check_equivalence(
    reference: QuantumCircuit,
    candidate: QuantumCircuit,
    output_map: Optional[Dict[int, int]] = None,
    up_to_global_phase: bool = True,
    unitary_qubit_threshold: int = DEFAULT_UNITARY_THRESHOLD,
    atol: float = 1e-8,
) -> EquivalenceResult:
    """Decide whether ``candidate`` implements ``reference``.

    Parameters
    ----------
    reference, candidate:
        The two circuits; ``candidate`` may be wider (routing ancillas).
    output_map:
        Logical qubit -> physical wire mapping at the *end* of the
        candidate (a routed circuit's ``final_layout.l2p``).  Identity
        when omitted.  Wires outside the map must end as an arbitrary
        permutation of the remaining inputs.
    up_to_global_phase:
        Accept equality up to a global phase factor (default).
    unitary_qubit_threshold:
        Maximum total width for the brute-force unitary fallback.
    atol:
        Angle/amplitude tolerance for both engines.
    """
    width = max(reference.num_qubits, candidate.num_qubits)
    if reference.num_qubits > candidate.num_qubits:
        return EquivalenceResult(
            "not_equivalent",
            "structural",
            f"candidate has fewer qubits ({candidate.num_qubits}) than "
            f"reference ({reference.num_qubits})",
        )
    phys = dict(output_map or {})
    ref_map = {q: phys.get(q, q) for q in range(reference.num_qubits)}

    if any(i.gate.name == "reset" for c in (reference, candidate) for i in c):
        return _unitary_or_unknown(
            reference,
            candidate,
            phys,
            width,
            up_to_global_phase,
            unitary_qubit_threshold,
            atol,
            reason="reset ops are outside the symbolic model",
        )
    ref_sig = _measurement_signature(reference, ref_map)
    cand_sig = _measurement_signature(candidate, {})
    if ref_sig != cand_sig:
        return EquivalenceResult(
            "not_equivalent",
            "structural",
            f"measurement signatures differ: {ref_sig} vs {cand_sig}",
        )
    ref_u = reference.remove_final_measurements()
    cand_u = candidate.remove_final_measurements()

    if (
        not phys
        and reference.num_qubits == candidate.num_qubits
        and ref_u.instructions == cand_u.instructions
    ):
        return EquivalenceResult(
            "equivalent", "structural", "identical instruction lists"
        )

    ps = PathSum(width, atol=atol)
    try:
        ps.apply_circuit(cand_u)
        ps.apply_circuit(ref_u, inverse=True, qubit_map=ref_map)
    except UnsupportedGateError as exc:
        return _unitary_or_unknown(
            reference,
            candidate,
            phys,
            width,
            up_to_global_phase,
            unitary_qubit_threshold,
            atol,
            reason=str(exc),
        )
    expected = {ref_map[l]: l for l in range(reference.num_qubits)}
    outcome = ps.finish(
        expected_outputs=expected, up_to_global_phase=up_to_global_phase
    )
    if outcome.status == "identity":
        return EquivalenceResult("equivalent", "symbolic")
    if outcome.status == "not_identity":
        return EquivalenceResult("not_equivalent", "symbolic", outcome.detail)
    return _unitary_or_unknown(
        reference,
        candidate,
        phys,
        width,
        up_to_global_phase,
        unitary_qubit_threshold,
        atol,
        reason=outcome.detail,
    )


def _unitary_or_unknown(
    reference: QuantumCircuit,
    candidate: QuantumCircuit,
    phys: Dict[int, int],
    width: int,
    up_to_global_phase: bool,
    threshold: int,
    atol: float,
    reason: str,
) -> EquivalenceResult:
    """Brute-force fallback, gated on width."""
    if width > threshold:
        return EquivalenceResult(
            "unknown",
            "symbolic",
            f"{reason}; {width} qubits exceeds the unitary fallback "
            f"threshold ({threshold})",
        )
    if any(
        i.gate.name == "reset" for c in (reference, candidate) for i in c
    ):
        return EquivalenceResult(
            "unknown", "unitary", "reset ops prevent unitary comparison"
        )
    # Compare the unitary parts only (measurement signatures were
    # matched structurally before reaching the fallback).
    reference = reference.remove_final_measurements()
    candidate = candidate.remove_final_measurements()
    import numpy as np

    def embedded(circuit: QuantumCircuit, qubit_map: Dict[int, int]):
        from ..sim.ops import apply_gate_matrix

        dim = 1 << width
        # Batch of dim basis states (rows); the final unitary is the
        # transpose of the evolved batch.
        state = np.eye(dim, dtype=complex)
        for instr in circuit:
            if instr.gate.name == "barrier":
                continue
            qs = tuple(qubit_map.get(q, q) for q in instr.qubits)
            state = apply_gate_matrix(state, instr.gate.matrix, qs, width)
        return state.T

    ref_map = {q: phys.get(q, q) for q in range(reference.num_qubits)}
    u_ref = embedded(reference, ref_map)
    u_cand = embedded(candidate, {})
    # Unconstrained extra wires: reference acts as identity there, so a
    # direct matrix comparison (after mapping) is exact.
    diff = u_cand @ u_ref.conj().T
    if up_to_global_phase:
        k = int(np.argmax(np.abs(np.diag(diff))))
        phase = diff[k, k]
        if abs(phase) > atol:
            diff = diff / (phase / abs(phase))
    dim = diff.shape[0]
    err = float(np.abs(diff - np.eye(dim)).max())
    if err < max(atol * 100, 1e-6):
        return EquivalenceResult(
            "equivalent", "unitary", f"max deviation {err:.2e}"
        )
    return EquivalenceResult(
        "not_equivalent",
        "unitary",
        f"unitaries differ (max deviation {err:.3g}); symbolic engine "
        f"said: {reason}",
    )
