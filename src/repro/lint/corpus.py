"""The paper circuit corpus, and bulk lint / verification over it.

One :class:`CorpusCase` bundles a logical QFA/QFM/modular circuit with
one transpiled variant (optimization level x coupling map) plus the
metadata the lint rules and the equivalence checker need: the AQFT
depth that governs the rotation-cutoff rule, the declared ancilla
wires, and — for routed cases — the final layout's logical-to-physical
output map.

:func:`corpus_cases` enumerates the cross product the paper sweeps
(operand sizes x approximation depths x transpile levels 0/1 x
with/without a linear coupling map) at the current ``REPRO_SCALE``;
:func:`lint_corpus` and :func:`verify_corpus` run the linter and the
symbolic equivalence checker over every case.  This backs both the
``repro-arith lint --corpus`` CLI path and
``scripts/selfcheck_corpus.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..core.adders import qfa_circuit
from ..core.modular import modular_constant_adder
from ..core.multipliers import qfm_circuit
from ..experiments.config import Scale, current_scale
from ..experiments.paper import qfa_depths_for, qfm_depths_for
from ..transpile.basis import IBM_BASIS
from ..transpile.decompose import decompose_to_basis
from ..transpile.layout import CouplingMap, linear_coupling
from ..transpile.optimize import optimize_circuit
from ..transpile.routing import route_circuit
from .diagnostics import LintReport, merge_reports
from .equivalence import EquivalenceResult, check_equivalence
from .rules import LintContext, lint_circuit

__all__ = ["CorpusCase", "corpus_cases", "lint_corpus", "verify_corpus"]


@dataclass(frozen=True)
class CorpusCase:
    """One (logical, transpiled) circuit pair plus checking metadata."""

    name: str
    kind: str  # "qfa" | "qfm" | "modular"
    logical: QuantumCircuit
    transpiled: QuantumCircuit
    level: int
    coupling: Optional[CouplingMap]
    #: logical qubit -> physical wire at the circuit's end (routed only).
    output_map: Optional[Dict[int, int]]
    #: The library AQFT depth the logical circuit was built with.
    aqft_depth: Optional[int]
    #: Depth bound for the REP009 rotation-cutoff rule: ``pi /
    #: 2**cutoff_depth`` is the finest rotation any stage of this
    #: circuit may legitimately emit (the add/mul steps are *not*
    #: depth-truncated, so this is set by register width, not by
    #: ``aqft_depth``).
    cutoff_depth: Optional[int] = None
    ancillas: Tuple[int, ...] = ()
    #: Input-domain predicate for the ancilla check (basis int -> bool).
    input_predicate: Optional[Callable[[int], bool]] = None

    def lint_context(self) -> LintContext:
        """The context the transpiled side should be linted under."""
        return LintContext(
            basis=IBM_BASIS,
            coupling=self.coupling,
            aqft_depth=self.cutoff_depth,
            ancillas=self.ancillas,
            expect_optimized=self.level >= 1,
            input_predicate=self.input_predicate,
        )


def _variants(
    logical: QuantumCircuit,
    levels: Sequence[int],
    couplings: Sequence[str],
) -> Iterator[Tuple[QuantumCircuit, int, Optional[CouplingMap], Optional[Dict[int, int]]]]:
    """Transpile ``logical`` for each (level, coupling) combination.

    Replicates the :func:`repro.transpile.passes.transpile` pipeline
    stage by stage so the routing result's final layout survives.
    """
    for coupling_name in couplings:
        if coupling_name == "none":
            base = decompose_to_basis(logical, IBM_BASIS)
            coupling = None
            output_map: Optional[Dict[int, int]] = None
        else:
            pre = decompose_to_basis(logical, IBM_BASIS)
            coupling = linear_coupling(pre.num_qubits)
            routed = route_circuit(pre, coupling)
            base = decompose_to_basis(routed.circuit, IBM_BASIS)
            output_map = {
                l: routed.final_layout.l2p[l]
                for l in range(logical.num_qubits)
            }
        for level in levels:
            circuit = optimize_circuit(base) if level >= 1 else base
            yield circuit, level, coupling, output_map


def corpus_cases(
    scale: Optional[Scale] = None,
    levels: Sequence[int] = (0, 1),
    couplings: Sequence[str] = ("none", "linear"),
    include_modular: bool = True,
) -> Iterator[CorpusCase]:
    """Enumerate the paper corpus at ``scale`` (default: REPRO_SCALE).

    QFA cases cover operand sizes up to the scale's ``qfa_n`` with both
    the modular (``m = n``) and carry (``m = n + 1``) targets, QFM cases
    cover both construction strategies, and every case iterates the
    paper's approximation-depth series for its width.
    """
    sc = scale or current_scale()
    qfa_sizes = sorted({2, max(2, sc.qfa_n // 2), sc.qfa_n})
    qfm_sizes = sorted({2, sc.qfm_n})
    for n in qfa_sizes:
        for m in (n, n + 1):
            for depth in qfa_depths_for(m):
                logical = qfa_circuit(n, m, depth=depth)
                for circuit, level, coupling, omap in _variants(
                    logical, levels, couplings
                ):
                    tag = "linear" if coupling is not None else "none"
                    yield CorpusCase(
                        name=f"{logical.name}/L{level}/{tag}",
                        kind="qfa",
                        logical=logical,
                        transpiled=circuit,
                        level=level,
                        coupling=coupling,
                        output_map=omap,
                        aqft_depth=depth,
                        # Finest legit angle: the untruncated add step's
                        # 2*pi/2**m, halved by the cp -> rz decomposition.
                        cutoff_depth=m,
                    )
    for n in qfm_sizes:
        for strategy in ("cqfa", "fused"):
            for depth in qfm_depths_for(n):
                logical = qfm_circuit(n, n, depth=depth, strategy=strategy)
                for circuit, level, coupling, omap in _variants(
                    logical, levels, couplings
                ):
                    tag = "linear" if coupling is not None else "none"
                    # Widest Fourier register: the cqfa slice adder acts
                    # on m+1 qubits, the fused form on all n+m of z; ccp
                    # decomposition quarters angles (cp(l/2) -> rz(l/4)).
                    widest = (n + 1) if strategy == "cqfa" else (n + n)
                    yield CorpusCase(
                        name=f"{logical.name}/{strategy}/L{level}/{tag}",
                        kind="qfm",
                        logical=logical,
                        transpiled=circuit,
                        level=level,
                        coupling=coupling,
                        output_map=omap,
                        aqft_depth=depth,
                        cutoff_depth=widest + 1,
                    )
    if include_modular:
        mod_n, mod_a, mod_nmod = 3, 2, 5
        logical = modular_constant_adder(mod_n, mod_a, mod_nmod)
        anc = (logical.num_qubits - 1,)
        # The Beauregard adder is only specified for b < N with the
        # overflow sentinel clear.
        b_mask = (1 << (mod_n + 1)) - 1
        predicate = lambda basis: (basis & b_mask) < mod_nmod  # noqa: E731
        for circuit, level, coupling, omap in _variants(
            logical, levels, couplings
        ):
            tag = "linear" if coupling is not None else "none"
            yield CorpusCase(
                name=f"{logical.name}/L{level}/{tag}",
                kind="modular",
                logical=logical,
                transpiled=circuit,
                level=level,
                coupling=coupling,
                output_map=omap,
                aqft_depth=None,
                # Constant phase adds can emit angles down to
                # 2*pi/2**(n+1), halved again by cp -> rz.
                cutoff_depth=mod_n + 2,
                # The clean-return check compares a wire to itself, so
                # it only applies when routing has not relocated the
                # ancilla.
                ancillas=anc if omap is None else (),
                input_predicate=predicate,
            )


def lint_corpus(
    cases: Optional[Sequence[CorpusCase]] = None,
    scale: Optional[Scale] = None,
) -> LintReport:
    """Lint the transpiled side of every corpus case."""
    if cases is None:
        cases = list(corpus_cases(scale=scale))
    reports = []
    for case in cases:
        circuit = case.transpiled.copy(name=case.name)
        reports.append(lint_circuit(circuit, case.lint_context()))
    return merge_reports(reports)


def verify_corpus(
    cases: Optional[Sequence[CorpusCase]] = None,
    scale: Optional[Scale] = None,
    unitary_qubit_threshold: int = 5,
) -> List[Tuple[CorpusCase, EquivalenceResult]]:
    """Symbolically verify transpiled == logical for every case."""
    if cases is None:
        cases = list(corpus_cases(scale=scale))
    out = []
    for case in cases:
        result = check_equivalence(
            case.logical,
            case.transpiled,
            output_map=case.output_map,
            unitary_qubit_threshold=unitary_qubit_threshold,
        )
        out.append((case, result))
    return out
