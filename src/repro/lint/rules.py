"""The lint rule catalog and registry.

Each rule is a function from ``(circuit, context)`` to an iterator of
findings, registered with the :func:`rule` decorator under a stable id
(``REP001``...).  :func:`lint_circuit` runs a selection of rules and
returns a :class:`~repro.lint.diagnostics.LintReport`.

Severity policy
---------------
* **error** — the circuit is semantically corrupt or cannot run as-is
  (bad operand indices, non-finite angles, basis/coupling violations,
  clobbered classical bits, dirty ancillas).
* **warning** — the circuit is valid but suspicious or wasteful
  (gates after measurement, unmerged rotation runs, cancelable pairs,
  rotations below the configured AQFT cutoff).
* **info** — advisory observations (dead qubits, unverifiable
  ancillas).

Most structural rules are redundant with the construction-time checks
in :class:`~repro.circuits.circuit.QuantumCircuit` — deliberately so:
transpiler passes build circuits by direct ``_instructions``
manipulation for speed, bypassing ``append`` validation, and the linter
is the safety net that still sees those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from .dataflow import analyze_liveness, ancilla_clean_return
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "LintContext",
    "LintRule",
    "RULES",
    "rule",
    "lint_circuit",
    "rule_catalog",
]

#: Ops that are structural rather than computational.
_STRUCTURAL = frozenset({"barrier", "measure", "reset"})

#: Rotation-family gates whose (wrapped) angle the AQFT cutoff governs.
_ROTATION_GATES = frozenset({"p", "rz", "cp", "crz", "ccp"})

#: Self-inverse entanglers eligible for adjacent-pair cancellation.
_SELF_INVERSE_2Q = frozenset({"cx", "cz", "swap"})


@dataclass(frozen=True)
class LintContext:
    """Optional knowledge that enables the context-dependent rules.

    Rules that need a field skip silently when it is absent, so a bare
    ``lint_circuit(circuit)`` runs only the context-free checks.
    """

    #: Allowed gate names after transpilation (enables REP007).
    basis: Optional[FrozenSet[str]] = None
    #: Physical connectivity (enables REP008).  Any object with a
    #: ``connected(a, b) -> bool`` method works.
    coupling: Optional[object] = None
    #: AQFT approximation depth ``d``; rotations below ``pi / 2**d``
    #: should have been pruned (enables REP009).
    aqft_depth: Optional[int] = None
    #: Ancilla wires that must return to their input state (REP012/13).
    ancillas: Tuple[int, ...] = ()
    #: Whether the circuit claims to be peephole-optimized (REP005/6).
    expect_optimized: bool = False
    #: Input-domain predicate for the ancilla simulation fallback
    #: (basis int -> bool); e.g. the modular adder's ``b < N``.
    input_predicate: Optional[Callable[[int], bool]] = None


RuleFn = Callable[[QuantumCircuit, LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: stable id, slug, default severity, checker."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    fn: RuleFn = field(repr=False, compare=False, default=None)  # type: ignore[assignment]


#: Registry in id order; populated by the :func:`rule` decorator.
RULES: List[LintRule] = []


def rule(
    rule_id: str, name: str, severity: Severity
) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under ``rule_id``."""

    def deco(fn: RuleFn) -> RuleFn:
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        RULES.append(LintRule(rule_id, name, severity, doc, fn))
        return fn

    return deco


def _diag(
    r: LintRule,
    message: str,
    index: Optional[int] = None,
    fix_hint: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    return Diagnostic(
        rule_id=r.rule_id,
        rule_name=r.name,
        severity=severity if severity is not None else r.severity,
        message=message,
        instruction_index=index,
        fix_hint=fix_hint,
    )


def _find(rule_id: str) -> LintRule:
    for r in RULES:
        if r.rule_id == rule_id:
            return r
    raise KeyError(rule_id)


# ---------------------------------------------------------------------------
# Structural validity
# ---------------------------------------------------------------------------

@rule("REP001", "operand-out-of-range", Severity.ERROR)
def _check_out_of_range(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """Qubit or clbit operand outside the circuit's registers."""
    r = _find("REP001")
    for idx, instr in enumerate(c):
        for q in instr.qubits:
            if not 0 <= q < c.num_qubits:
                yield _diag(
                    r,
                    f"{instr.gate.name} addresses qubit {q}; circuit has "
                    f"{c.num_qubits} qubits",
                    idx,
                    "fix the pass that emitted this instruction",
                )
        for cl in instr.clbits:
            if not 0 <= cl < c.num_clbits:
                yield _diag(
                    r,
                    f"{instr.gate.name} addresses clbit {cl}; circuit has "
                    f"{c.num_clbits} clbits",
                    idx,
                )


@rule("REP002", "duplicate-operands", Severity.ERROR)
def _check_duplicates(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """The same qubit appears twice in one instruction's operands."""
    r = _find("REP002")
    for idx, instr in enumerate(c):
        if instr.gate.name == "barrier":
            continue
        if len(set(instr.qubits)) != len(instr.qubits):
            yield _diag(
                r,
                f"{instr.gate.name} repeats a qubit operand: "
                f"{list(instr.qubits)}",
                idx,
                "a controlled gate needs distinct control and target wires",
            )


@rule("REP010", "nonfinite-parameter", Severity.ERROR)
def _check_nonfinite(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A gate parameter is NaN or infinite."""
    r = _find("REP010")
    for idx, instr in enumerate(c):
        for p in instr.gate.params:
            if not math.isfinite(p):
                yield _diag(
                    r,
                    f"{instr.gate.name} has non-finite parameter {p!r}",
                    idx,
                    "check the angle arithmetic that produced this gate",
                )


@rule("REP011", "clbit-collision", Severity.ERROR)
def _check_clbit_collision(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """Two measurements write the same classical bit."""
    r = _find("REP011")
    live = analyze_liveness(c)
    for clbit, writes in sorted(live.clbit_writes.items()):
        if len(writes) > 1:
            yield _diag(
                r,
                f"clbit {clbit} is written by {len(writes)} measurements "
                f"(ops {writes}); earlier results are lost",
                writes[-1],
                "measure into distinct classical bits",
            )


# ---------------------------------------------------------------------------
# Ordering / liveness
# ---------------------------------------------------------------------------

@rule("REP003", "gate-after-measure", Severity.WARNING)
def _check_gate_after_measure(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A unitary gate acts on a qubit after it was measured."""
    r = _find("REP003")
    measured_at: Dict[int, int] = {}
    for idx, instr in enumerate(c):
        name = instr.gate.name
        if name == "barrier":
            continue
        if name == "measure":
            measured_at[instr.qubits[0]] = idx
            continue
        if name == "reset":
            measured_at.pop(instr.qubits[0], None)
            continue
        for q in instr.qubits:
            if q in measured_at:
                yield _diag(
                    r,
                    f"{name} on qubit {q} at op {idx} follows its "
                    f"measurement at op {measured_at[q]}",
                    idx,
                    "move measurements to the end, or reset the qubit first",
                )
                measured_at.pop(q)  # one finding per measurement


@rule("REP004", "dead-qubit", Severity.INFO)
def _check_dead_qubits(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A qubit is never touched by any non-barrier operation."""
    r = _find("REP004")
    live = analyze_liveness(c)
    for q in live.dead_qubits:
        yield _diag(
            r,
            f"qubit {q} is never used",
            None,
            "drop the wire or remove it from the register",
        )


# ---------------------------------------------------------------------------
# Missed-optimization smells
# ---------------------------------------------------------------------------

#: 1q diagonal (z-rotation family) gates: any adjacent pair merges into
#: a single rz by angle addition, so optimized circuits have none.
_Z_FAMILY_1Q = frozenset({"id", "z", "s", "sdg", "t", "tdg", "p", "rz"})


@rule("REP005", "unmerged-1q-run", Severity.WARNING)
def _check_unmerged_runs(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """Adjacent single-qubit z-rotations that a peephole pass should merge.

    Only diagonal pairs are flagged: a canonical ``rz sx rz`` Euler
    triplet is already merged, but two adjacent ``rz``-family gates are
    always one gate's worth of redundancy.
    """
    if not ctx.expect_optimized:
        return
    r = _find("REP005")
    last_diag: Dict[int, int] = {}  # qubit -> index of trailing z-family gate
    reported: set = set()
    for idx, instr in enumerate(c):
        g = instr.gate
        if g.name == "barrier":
            continue
        if g.num_qubits == 1 and g.name in _Z_FAMILY_1Q:
            q = instr.qubits[0]
            prev = last_diag.get(q)
            if prev is not None and prev not in reported:
                yield _diag(
                    r,
                    f"ops {prev} and {idx} are adjacent 1q rotations on "
                    f"qubit {q}; an optimized circuit should merge them "
                    f"into one rz",
                    idx,
                    "run optimize_circuit / merge_1q_runs",
                )
                reported.add(prev)
                reported.add(idx)
            last_diag[q] = idx
        else:
            for q in instr.qubits:
                last_diag.pop(q, None)


@rule("REP006", "cancelable-2q-pair", Severity.WARNING)
def _check_cancelable_pairs(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """Adjacent identical self-inverse entanglers that cancel to nothing."""
    if not ctx.expect_optimized:
        return
    r = _find("REP006")
    # open[qubits tuple] = (index, name); any intervening op on either
    # wire closes the window.
    open_pairs: Dict[Tuple[int, ...], Tuple[int, str]] = {}
    for idx, instr in enumerate(c):
        g = instr.gate
        if g.name == "barrier":
            continue
        qs = instr.qubits
        if g.name in _SELF_INVERSE_2Q:
            key = qs if g.name != "cz" else tuple(sorted(qs))
            prev = open_pairs.get(key)
            if prev is not None and prev[1] == g.name:
                yield _diag(
                    r,
                    f"{g.name} at ops {prev[0]} and {idx} on qubits "
                    f"{list(qs)} cancel to identity",
                    idx,
                    "run optimize_circuit / cancel_adjacent_cx",
                )
                del open_pairs[key]
                continue
            # This gate also disturbs any other open window on its wires.
            for k in [k for k in open_pairs if set(k) & set(qs) and k != key]:
                del open_pairs[k]
            open_pairs[key] = (idx, g.name)
        else:
            for k in [k for k in open_pairs if set(k) & set(qs)]:
                del open_pairs[k]


# ---------------------------------------------------------------------------
# Transpilation-target conformance
# ---------------------------------------------------------------------------

@rule("REP007", "non-basis-gate", Severity.ERROR)
def _check_basis(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A gate outside the declared target basis survived transpilation."""
    if ctx.basis is None:
        return
    r = _find("REP007")
    for idx, instr in enumerate(c):
        name = instr.gate.name
        if name in _STRUCTURAL or name in ctx.basis:
            continue
        yield _diag(
            r,
            f"gate {name!r} is not in the target basis "
            f"{sorted(ctx.basis)}",
            idx,
            "run decompose_to_basis",
        )


@rule("REP008", "coupling-violation", Severity.ERROR)
def _check_coupling(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A multi-qubit gate spans physically unconnected qubits."""
    if ctx.coupling is None:
        return
    r = _find("REP008")
    for idx, instr in enumerate(c):
        g = instr.gate
        if g.name == "barrier" or g.num_qubits < 2:
            continue
        if g.num_qubits > 2:
            yield _diag(
                r,
                f"{g.name} acts on {g.num_qubits} qubits; hardware "
                f"executes at most 2-qubit gates",
                idx,
                "decompose to the basis before routing",
            )
            continue
        a, b = instr.qubits
        if not ctx.coupling.connected(a, b):
            yield _diag(
                r,
                f"{g.name} on qubits {a},{b} violates the coupling map",
                idx,
                "run route_circuit for this coupling map",
            )


@rule("REP009", "below-cutoff-rotation", Severity.WARNING)
def _check_rotation_cutoff(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A rotation angle falls below the AQFT cutoff ``pi / 2**d``."""
    if ctx.aqft_depth is None:
        return
    r = _find("REP009")
    cutoff = math.pi / (1 << ctx.aqft_depth)
    tol = 1e-9
    for idx, instr in enumerate(c):
        g = instr.gate
        if g.name not in _ROTATION_GATES:
            continue
        theta = math.remainder(g.params[0], 2 * math.pi)  # wrap to (-pi, pi]
        if tol < abs(theta) < cutoff * (1.0 - 1e-9):
            yield _diag(
                r,
                f"{g.name}({g.params[0]:.3g}) wraps to |angle| = "
                f"{abs(theta):.3g} < pi/2^{ctx.aqft_depth} = {cutoff:.3g}",
                idx,
                f"an AQFT of depth {ctx.aqft_depth} should have pruned "
                f"this rotation",
            )


# ---------------------------------------------------------------------------
# Dataflow: ancilla hygiene
# ---------------------------------------------------------------------------

@rule("REP012", "ancilla-dirty", Severity.ERROR)
def _check_ancillas(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """A declared ancilla does not return to its input state."""
    if not ctx.ancillas:
        return
    r = _find("REP012")
    r_unv = _find("REP013")
    for verdict in ancilla_clean_return(
        c, ctx.ancillas, valid_inputs=ctx.input_predicate
    ):
        if verdict.status == "dirty":
            yield _diag(
                r,
                f"ancilla qubit {verdict.qubit} ends dirty: {verdict.detail}",
                None,
                "uncompute the ancilla before releasing it",
            )
        elif verdict.status == "unverifiable":
            yield _diag(
                r_unv,
                f"ancilla qubit {verdict.qubit} cannot be verified "
                f"statically: {verdict.detail}",
                None,
            )


@rule("REP013", "ancilla-unverifiable", Severity.INFO)
def _check_ancillas_unverifiable(c: QuantumCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    """Placeholder owner for REP013 findings emitted by REP012's checker."""
    return
    yield  # pragma: no cover


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def rule_catalog() -> List[LintRule]:
    """The registered rules in id order."""
    return sorted(RULES, key=lambda r: r.rule_id)


def lint_circuit(
    circuit: QuantumCircuit,
    context: Optional[LintContext] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the (selected) rules over one circuit.

    Parameters
    ----------
    circuit:
        The circuit to lint.
    context:
        Optional :class:`LintContext`; omitted fields disable the
        corresponding context-dependent rules.
    rules:
        Optional iterable of rule ids to restrict the run to.
    """
    ctx = context or LintContext()
    wanted = set(rules) if rules is not None else None
    report = LintReport()
    name = circuit.name
    for r in rule_catalog():
        if wanted is not None and r.rule_id not in wanted:
            continue
        if r.fn is None:
            continue
        for diag in r.fn(circuit, ctx):
            report.add(
                Diagnostic(
                    rule_id=diag.rule_id,
                    rule_name=diag.rule_name,
                    severity=diag.severity,
                    message=diag.message,
                    instruction_index=diag.instruction_index,
                    circuit_name=name,
                    fix_hint=diag.fix_hint,
                )
            )
    return report
