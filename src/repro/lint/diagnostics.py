"""The diagnostic model of the circuit static-analysis framework.

A :class:`Diagnostic` pins one finding to a rule id, a severity, and
(usually) an instruction index; a :class:`LintReport` aggregates the
findings of one lint run and renders them as human-readable text or as
a SARIF-flavoured JSON document for CI consumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(IntEnum):
    """Finding severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {"INFO": "note", "WARNING": "warning", "ERROR": "error"}[self.name]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Parameters
    ----------
    rule_id:
        Stable rule identifier (``"REP002"``).
    rule_name:
        Human-readable rule slug (``"duplicate-operands"``).
    severity:
        :class:`Severity` of the finding.
    message:
        What is wrong, with concrete indices/values.
    instruction_index:
        Index into ``circuit.instructions`` the finding anchors to, or
        ``None`` for circuit-level findings (e.g. a dead qubit).
    circuit_name:
        Name of the linted circuit.
    fix_hint:
        Optional short suggestion for resolving the finding.
    file:
        Source file the finding anchors to (codebase-audit findings);
        empty for circuit findings.
    line:
        1-indexed source line within ``file``, when known.
    """

    rule_id: str
    rule_name: str
    severity: Severity
    message: str
    instruction_index: Optional[int] = None
    circuit_name: str = ""
    fix_hint: Optional[str] = None
    file: str = ""
    line: Optional[int] = None

    def render(self) -> str:
        """One-line text rendering, grep- and editor-friendly."""
        if self.file:
            where = f"{self.file}:{self.line}" if self.line else self.file
        else:
            loc = (
                f"op {self.instruction_index}"
                if self.instruction_index is not None
                else "circuit"
            )
            where = f"{self.circuit_name or '<circuit>'}:{loc}"
        out = (
            f"{where}: "
            f"{self.severity}: {self.message} [{self.rule_id}:{self.rule_name}]"
        )
        if self.fix_hint:
            out += f"\n    hint: {self.fix_hint}"
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (mirrors the SARIF result shape)."""
        from .sarif import _result_location

        out: Dict[str, Any] = {
            "ruleId": self.rule_id,
            "ruleName": self.rule_name,
            "level": self.severity.sarif_level,
            "message": {"text": self.message},
            "locations": [_result_location(self)],
        }
        if self.fix_hint:
            out["fixes"] = [{"description": {"text": self.fix_hint}}]
        return out


@dataclass
class LintReport:
    """All findings from linting one or more circuits."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        """Record one finding."""
        self.diagnostics.append(diag)

    def extend(self, other: "LintReport") -> None:
        """Merge another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        """The findings at exactly ``severity``."""
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-level findings."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-level findings."""
        return self.by_severity(Severity.WARNING)

    def worst(self) -> Optional[Severity]:
        """The highest severity present, or ``None`` when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def ok(self, strict: bool = False) -> bool:
        """Whether the lint run passes.

        Errors always fail; ``strict=True`` also fails on warnings.
        """
        worst = self.worst()
        if worst is None:
            return True
        threshold = Severity.WARNING if strict else Severity.ERROR
        return worst < threshold

    def summary(self) -> str:
        """A one-line count summary, e.g. ``2 errors, 1 warning``."""
        counts = [
            (len(self.errors), "error"),
            (len(self.warnings), "warning"),
            (len(self.by_severity(Severity.INFO)), "info"),
        ]
        parts = [
            f"{n} {label}{'s' if n != 1 and label != 'info' else ''}"
            for n, label in counts
            if n
        ]
        return ", ".join(parts) if parts else "clean"

    def to_text(self) -> str:
        """Full human-readable rendering, one finding per line."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(
        self,
        tool_version: str = "0",
        tool_name: str = "repro-arith lint",
        rule_descriptions: Optional[Dict[str, str]] = None,
    ) -> str:
        """A valid SARIF 2.1.0 document (single run) as JSON text."""
        from .sarif import to_sarif

        return json.dumps(
            to_sarif(
                self.diagnostics,
                tool_name=tool_name,
                tool_version=tool_version,
                rule_descriptions=rule_descriptions,
            ),
            indent=2,
            sort_keys=True,
        )


def merge_reports(reports: Sequence[LintReport]) -> LintReport:
    """Concatenate several reports into one."""
    out = LintReport()
    for r in reports:
        out.extend(r)
    return out
