"""Static analysis for the circuit IR.

Three layers, each usable on its own:

* :mod:`repro.lint.rules` — a registry of lint rules (``REP001``...)
  over :class:`~repro.circuits.circuit.QuantumCircuit`, reported
  through the :class:`~repro.lint.diagnostics.Diagnostic` model with
  text and SARIF-ish JSON rendering.
* :mod:`repro.lint.dataflow` — qubit liveness and ANF-based wire value
  tracking, including the ancilla clean-return check.
* :mod:`repro.lint.phasepoly` / :mod:`repro.lint.equivalence` — a
  phase-polynomial path-sum engine and the
  :func:`~repro.lint.equivalence.check_equivalence` verdict layer that
  symbolically verifies transpiler output against the logical circuit
  without building unitaries.

Entry points: ``repro-arith lint`` (CLI), the transpiler's checked mode
(:func:`repro.transpile.passes.transpile` with ``checked=True``), and
:mod:`repro.lint.corpus` for bulk runs over the paper corpus.
"""

from .corpus import CorpusCase, corpus_cases, lint_corpus, verify_corpus
from .dataflow import (
    AncillaVerdict,
    QubitLiveness,
    analyze_liveness,
    ancilla_clean_return,
    trace_wire_values,
)
from .diagnostics import Diagnostic, LintReport, Severity, merge_reports
from .equivalence import EquivalenceResult, check_equivalence
from .phasepoly import PathSum, UnsupportedGateError
from .rules import LintContext, LintRule, RULES, lint_circuit, rule_catalog

__all__ = [
    "AncillaVerdict",
    "CorpusCase",
    "Diagnostic",
    "EquivalenceResult",
    "LintContext",
    "LintReport",
    "LintRule",
    "PathSum",
    "QubitLiveness",
    "RULES",
    "Severity",
    "UnsupportedGateError",
    "analyze_liveness",
    "ancilla_clean_return",
    "check_equivalence",
    "corpus_cases",
    "lint_circuit",
    "lint_corpus",
    "merge_reports",
    "rule_catalog",
    "trace_wire_values",
    "verify_corpus",
]
