"""Dataflow analyses over the circuit IR.

Two families of facts feed the lint rules and the equivalence checker:

* **liveness** — first/last use per qubit and clbit, dead (never-used)
  qubits, and the measured-then-reused ordering facts.
* **value tracking** — a symbolic forward execution over the
  permutation + diagonal fragment of the gate set.  Wire values are
  algebraic normal forms (ANF) over GF(2): X/CX/SWAP keep values
  linear, CCX/CSWAP introduce products, diagonal gates leave values
  untouched, and anything else (H, SX, measure, ...) poisons the wires
  it touches to ``UNKNOWN``.  This is enough to *statically* prove
  ancilla clean-return for reversible-logic circuits; for Fourier-space
  constructions (whose ancilla interacts with Hadamard-mixed wires) the
  analysis reports "unverifiable" rather than guessing, and callers may
  fall back to a small-register simulation check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from .anf import ANF, anf_and, anf_one, anf_var, anf_xor

__all__ = [
    "QubitLiveness",
    "analyze_liveness",
    "trace_wire_values",
    "UNKNOWN",
    "ancilla_clean_return",
    "AncillaVerdict",
]


@dataclass
class QubitLiveness:
    """Per-wire usage facts for one circuit."""

    num_qubits: int
    num_clbits: int
    #: qubit -> (first op index, last op index), barriers excluded.
    qubit_range: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: clbit -> indices of measure ops writing it.
    clbit_writes: Dict[int, List[int]] = field(default_factory=dict)
    #: qubit -> index of each measure op on it.
    measure_sites: Dict[int, List[int]] = field(default_factory=dict)
    #: qubit -> index of each reset op on it.
    reset_sites: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def dead_qubits(self) -> List[int]:
        """Qubits never touched by a non-barrier op."""
        return [q for q in range(self.num_qubits) if q not in self.qubit_range]


def analyze_liveness(circuit: QuantumCircuit) -> QubitLiveness:
    """Single forward sweep computing :class:`QubitLiveness`."""
    live = QubitLiveness(circuit.num_qubits, circuit.num_clbits)
    for idx, instr in enumerate(circuit):
        name = instr.gate.name
        if name == "barrier":
            continue
        for q in instr.qubits:
            first, _ = live.qubit_range.get(q, (idx, idx))
            live.qubit_range[q] = (first, idx)
        if name == "measure":
            live.measure_sites.setdefault(instr.qubits[0], []).append(idx)
            for c in instr.clbits:
                live.clbit_writes.setdefault(c, []).append(idx)
        elif name == "reset":
            live.reset_sites.setdefault(instr.qubits[0], []).append(idx)
    return live


#: Sentinel for a wire whose value left the trackable fragment.
UNKNOWN: Optional[ANF] = None

#: Gates that permute computational basis states (trackable updates).
_PERMUTATION_GATES = frozenset({"x", "cx", "swap", "ccx", "cswap"})


def trace_wire_values(
    circuit: QuantumCircuit,
    stop_index: Optional[int] = None,
) -> List[Optional[ANF]]:
    """Forward symbolic execution of the permutation+diagonal fragment.

    Returns one entry per qubit: the ANF of that wire's final value as
    a function of the circuit's input bits, or :data:`UNKNOWN` when a
    non-trackable gate touched the wire.  Diagonal gates never change
    values; ``reset`` forces a wire to the constant 0; ``measure``
    leaves the value in place (a computational-basis readout does not
    disturb a basis-state-valued wire) but any later *conditioned* use
    is outside this model, so measure poisons nothing here.
    """
    values: List[Optional[ANF]] = [anf_var(i) for i in range(circuit.num_qubits)]
    for idx, instr in enumerate(circuit):
        if stop_index is not None and idx >= stop_index:
            break
        g = instr.gate
        name = g.name
        q = instr.qubits
        if name in ("barrier", "measure", "id"):
            continue
        if name == "reset":
            values[q[0]] = frozenset()  # constant 0
            continue
        if g.is_unitary and g.is_diagonal:
            continue
        if name == "x":
            v = values[q[0]]
            values[q[0]] = anf_xor(v, anf_one()) if v is not UNKNOWN else UNKNOWN
        elif name == "cx":
            c, t = values[q[0]], values[q[1]]
            values[q[1]] = (
                anf_xor(t, c) if c is not UNKNOWN and t is not UNKNOWN else UNKNOWN
            )
        elif name == "swap":
            values[q[0]], values[q[1]] = values[q[1]], values[q[0]]
        elif name == "ccx":
            a, b, t = (values[w] for w in q)
            if UNKNOWN in (a, b, t):
                values[q[2]] = UNKNOWN
            else:
                values[q[2]] = anf_xor(t, anf_and(a, b))
        elif name == "cswap":
            c, a, b = (values[w] for w in q)
            if UNKNOWN in (c, a, b):
                values[q[1]] = values[q[2]] = UNKNOWN
            else:
                delta = anf_and(c, anf_xor(a, b))
                values[q[1]] = anf_xor(a, delta)
                values[q[2]] = anf_xor(b, delta)
        else:
            # Outside the permutation+diagonal fragment (h, sx, u, ...):
            # every touched wire becomes untrackable.
            for w in q:
                values[w] = UNKNOWN
    return values


@dataclass(frozen=True)
class AncillaVerdict:
    """Result of an ancilla clean-return check for one qubit."""

    qubit: int
    status: str  # "clean" | "dirty" | "unverifiable"
    detail: str = ""


def ancilla_clean_return(
    circuit: QuantumCircuit,
    ancillas: Sequence[int],
    simulate_threshold: int = 10,
    trials: int = 4,
    atol: float = 1e-9,
    valid_inputs: Optional[Callable[[int], bool]] = None,
) -> List[AncillaVerdict]:
    """Check that each ancilla wire ends where it started.

    Strategy: prove it statically with :func:`trace_wire_values` when
    the wire stays inside the trackable fragment; otherwise, for
    circuits of at most ``simulate_threshold`` qubits, fall back to
    simulating a few computational-basis inputs (ancillas in |0>) and
    checking the ancilla marginal returns to |0>.  Wires that are
    neither trackable nor small enough to simulate come back
    ``"unverifiable"``.

    ``valid_inputs`` restricts the simulated basis inputs to a declared
    input domain (e.g. the Beauregard adder's ``b < N`` precondition):
    it receives the candidate basis integer (ancilla bits already
    cleared) and returns whether the circuit is specified on it.
    """
    values = trace_wire_values(circuit)
    out: List[AncillaVerdict] = []
    needs_sim: List[int] = []
    for q in ancillas:
        if not 0 <= q < circuit.num_qubits:
            raise ValueError(f"ancilla index {q} out of range")
        v = values[q]
        if v is UNKNOWN:
            needs_sim.append(q)
            continue
        if v == anf_var(q):
            out.append(AncillaVerdict(q, "clean", "proved by ANF tracking"))
        else:
            out.append(
                AncillaVerdict(
                    q,
                    "dirty",
                    f"wire ends as a different function of the inputs ({len(v)} terms)",
                )
            )
    if needs_sim:
        if circuit.num_qubits > simulate_threshold or circuit.has_measurements():
            for q in needs_sim:
                out.append(
                    AncillaVerdict(
                        q,
                        "unverifiable",
                        "wire leaves the permutation+diagonal fragment and the "
                        "circuit is too wide to simulate",
                    )
                )
        else:
            out.extend(
                _simulated_clean_return(
                    circuit, needs_sim, trials, atol, valid_inputs
                )
            )
    out.sort(key=lambda v: v.qubit)
    return out


def _simulated_clean_return(
    circuit: QuantumCircuit,
    ancillas: List[int],
    trials: int,
    atol: float,
    valid_inputs: Optional[Callable[[int], bool]] = None,
) -> List[AncillaVerdict]:
    """Basis-state simulation fallback for the clean-return check."""
    import numpy as np

    from ..sim.ops import apply_gate_matrix

    n = circuit.num_qubits
    anc_mask = 0
    for q in ancillas:
        anc_mask |= 1 << q
    rng = np.random.default_rng(20220817)
    dirty: Dict[int, str] = {}
    inputs = {0} if valid_inputs is None or valid_inputs(0) else set()
    attempts = 0
    while len(inputs) < trials and attempts < 64 * trials:
        attempts += 1
        candidate = int(rng.integers(0, 1 << n)) & ~anc_mask
        if valid_inputs is not None and not valid_inputs(candidate):
            continue
        inputs.add(candidate)
    if not inputs:
        return [
            AncillaVerdict(
                q, "unverifiable", "no valid basis inputs found to simulate"
            )
            for q in ancillas
        ]
    for basis_in in sorted(inputs):
        state = np.zeros((1, 1 << n), dtype=complex)  # batch of one
        state[0, basis_in] = 1.0
        for instr in circuit:
            if instr.gate.name == "barrier":
                continue
            if not instr.gate.is_unitary:
                return [
                    AncillaVerdict(q, "unverifiable", "non-unitary op present")
                    for q in ancillas
                ]
            state = apply_gate_matrix(
                state, instr.gate.matrix, instr.qubits, n
            )
        probs = np.abs(state[0]) ** 2
        for q in ancillas:
            if q in dirty:
                continue
            p_one = float(probs[(np.arange(1 << n) >> q) & 1 == 1].sum())
            if p_one > atol:
                dirty[q] = (
                    f"P(ancilla={q} ends |1>) = {p_one:.3g} "
                    f"on basis input {basis_in}"
                )
    return [
        AncillaVerdict(q, "dirty", dirty[q])
        if q in dirty
        else AncillaVerdict(q, "clean", "verified on sampled basis inputs")
        for q in ancillas
    ]
