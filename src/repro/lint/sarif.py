"""Valid SARIF 2.1.0 serialization shared by circuit lint and the audit.

PR 2 shipped a "SARIF-ish" JSON export; this module upgrades it to a
document that conforms to the SARIF 2.1.0 schema: ``$schema`` pinned,
rule metadata carried as ``reportingDescriptor`` objects (with
``shortDescription`` and ``defaultConfiguration``), every result's
``ruleIndex`` pointing into the driver's rule table, and locations
rendered as ``physicalLocation`` (file findings — the codebase audit)
or ``logicalLocations`` (circuit findings — the instruction-anchored
lint).  :func:`validate_sarif` is a dependency-free structural
validator covering the subset of the schema this repository emits; the
CI image has no ``jsonschema`` package, so the SARIF test suite pins
conformance through it instead.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .diagnostics import Diagnostic, Severity

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "validate_sarif"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_LEVELS = ("none", "note", "warning", "error")


def _result_location(diag: Diagnostic) -> Dict[str, Any]:
    """One SARIF ``location`` for a finding.

    Audit findings carry a file/line pair and render as a
    ``physicalLocation``; circuit findings carry a circuit name and an
    optional instruction index and render as ``logicalLocations``.
    """
    if diag.file:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": diag.file.replace("\\", "/")}
        }
        if diag.line is not None:
            physical["region"] = {"startLine": max(1, int(diag.line))}
        return {"physicalLocation": physical}
    logical: Dict[str, Any] = {"name": diag.circuit_name or "<circuit>"}
    if diag.instruction_index is not None:
        logical["fullyQualifiedName"] = (
            f"{diag.circuit_name or '<circuit>'}"
            f"::op{diag.instruction_index}"
        )
        logical["properties"] = {
            "instructionIndex": diag.instruction_index
        }
    return {"logicalLocations": [logical]}


def _rule_descriptor(
    rule_id: str,
    name: str,
    description: str,
    severity: Severity,
) -> Dict[str, Any]:
    desc = description or name or rule_id
    return {
        "id": rule_id,
        "name": name or rule_id,
        "shortDescription": {"text": desc},
        "defaultConfiguration": {"level": severity.sarif_level},
    }


def to_sarif(
    diagnostics: Sequence[Diagnostic],
    tool_name: str,
    tool_version: str = "0",
    rule_descriptions: Optional[Dict[str, str]] = None,
    information_uri: str = "https://arxiv.org/abs/2112.09349",
) -> Dict[str, Any]:
    """A SARIF 2.1.0 document (as a plain dict) for one analysis run."""
    rule_descriptions = rule_descriptions or {}
    # One reportingDescriptor per rule, in first-seen-then-sorted order;
    # results refer back through ruleIndex as the spec recommends.
    rules: List[Dict[str, Any]] = []
    index_of: Dict[str, int] = {}
    for diag in diagnostics:
        if diag.rule_id in index_of:
            continue
        index_of[diag.rule_id] = -1  # placeholder until sorted
        rules.append(
            _rule_descriptor(
                diag.rule_id,
                diag.rule_name,
                rule_descriptions.get(diag.rule_id, ""),
                diag.severity,
            )
        )
    rules.sort(key=lambda r: r["id"])
    index_of = {r["id"]: i for i, r in enumerate(rules)}

    results = []
    for diag in diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diag.rule_id,
            "ruleIndex": index_of[diag.rule_id],
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
            "locations": [_result_location(diag)],
        }
        if diag.fix_hint:
            result["properties"] = {"fixHint": diag.fix_hint}
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": information_uri,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def to_sarif_json(
    diagnostics: Sequence[Diagnostic],
    tool_name: str,
    tool_version: str = "0",
    rule_descriptions: Optional[Dict[str, str]] = None,
) -> str:
    """:func:`to_sarif` rendered as pretty-printed JSON."""
    return json.dumps(
        to_sarif(diagnostics, tool_name, tool_version, rule_descriptions),
        indent=2,
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# Structural validation (the emitted subset of the 2.1.0 schema)
# ---------------------------------------------------------------------------

def _err(errors: List[str], path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_message(obj: Any, path: str, errors: List[str]) -> None:
    if not isinstance(obj, dict) or not isinstance(obj.get("text"), str):
        _err(errors, path, "message must be an object with a 'text' string")
    elif not obj["text"]:
        _err(errors, path, "message.text must be non-empty")


def _check_rule(rule: Any, path: str, errors: List[str]) -> None:
    if not isinstance(rule, dict):
        _err(errors, path, "reportingDescriptor must be an object")
        return
    if not isinstance(rule.get("id"), str) or not rule["id"]:
        _err(errors, path, "rule id must be a non-empty string")
    if "shortDescription" in rule:
        _check_message(
            rule["shortDescription"], f"{path}.shortDescription", errors
        )
    config = rule.get("defaultConfiguration")
    if config is not None:
        if not isinstance(config, dict) or (
            "level" in config and config["level"] not in _LEVELS
        ):
            _err(errors, path, "defaultConfiguration.level invalid")


def _check_location(loc: Any, path: str, errors: List[str]) -> None:
    if not isinstance(loc, dict):
        _err(errors, path, "location must be an object")
        return
    physical = loc.get("physicalLocation")
    logical = loc.get("logicalLocations")
    if physical is None and logical is None:
        _err(
            errors,
            path,
            "location needs physicalLocation or logicalLocations",
        )
        return
    if physical is not None:
        art = physical.get("artifactLocation") if isinstance(
            physical, dict
        ) else None
        if not isinstance(art, dict) or not isinstance(art.get("uri"), str):
            _err(errors, path, "physicalLocation.artifactLocation.uri missing")
        region = physical.get("region") if isinstance(physical, dict) else None
        if region is not None:
            start = region.get("startLine")
            if not isinstance(start, int) or start < 1:
                _err(errors, path, "region.startLine must be an int >= 1")
    if logical is not None:
        if not isinstance(logical, list) or not logical:
            _err(errors, path, "logicalLocations must be a non-empty array")
        else:
            for i, entry in enumerate(logical):
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("name"), str
                ):
                    _err(errors, f"{path}[{i}]", "logicalLocation.name missing")


def validate_sarif(doc: Any) -> List[str]:
    """Structural errors of ``doc`` against the emitted SARIF subset.

    Returns an empty list for a conforming document.  Checks the
    invariants the 2.1.0 schema mandates for everything this repo
    emits: top-level ``$schema``/``version``/``runs``, driver name and
    rule descriptors, result ``ruleId``/``ruleIndex`` consistency,
    ``level`` vocabulary, message and location shapes.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    if doc.get("version") != SARIF_VERSION:
        _err(errors, "version", f"must be {SARIF_VERSION!r}")
    schema = doc.get("$schema")
    if schema is not None and "sarif" not in str(schema):
        _err(errors, "$schema", "does not reference a SARIF schema")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        _err(errors, "runs", "must be a non-empty array")
        return errors
    for ri, run in enumerate(runs):
        rpath = f"runs[{ri}]"
        if not isinstance(run, dict):
            _err(errors, rpath, "run must be an object")
            continue
        driver = (run.get("tool") or {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            _err(errors, f"{rpath}.tool.driver", "driver.name missing")
            continue
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            _err(errors, f"{rpath}.tool.driver.rules", "must be an array")
            rules = []
        rule_ids = []
        for i, rule in enumerate(rules):
            _check_rule(rule, f"{rpath}.tool.driver.rules[{i}]", errors)
            if isinstance(rule, dict) and isinstance(rule.get("id"), str):
                rule_ids.append(rule["id"])
        if len(set(rule_ids)) != len(rule_ids):
            _err(errors, f"{rpath}.tool.driver.rules", "duplicate rule ids")
        results = run.get("results")
        if not isinstance(results, list):
            _err(errors, f"{rpath}.results", "must be an array")
            continue
        for i, result in enumerate(results):
            path = f"{rpath}.results[{i}]"
            if not isinstance(result, dict):
                _err(errors, path, "result must be an object")
                continue
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str) or not rule_id:
                _err(errors, path, "ruleId must be a non-empty string")
            if result.get("level") not in _LEVELS:
                _err(errors, path, f"level must be one of {_LEVELS}")
            _check_message(result.get("message"), f"{path}.message", errors)
            idx = result.get("ruleIndex")
            if idx is not None:
                if (
                    not isinstance(idx, int)
                    or not 0 <= idx < len(rule_ids)
                    or rule_ids[idx] != rule_id
                ):
                    _err(errors, path, "ruleIndex inconsistent with ruleId")
            locations = result.get("locations")
            if locations is not None:
                if not isinstance(locations, list):
                    _err(errors, f"{path}.locations", "must be an array")
                else:
                    for li, loc in enumerate(locations):
                        _check_location(
                            loc, f"{path}.locations[{li}]", errors
                        )
    return errors
