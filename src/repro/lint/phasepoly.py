"""Phase-polynomial path sums: the symbolic circuit semantics.

A circuit over the QFT-arithmetic gate set is represented exactly as a
*path sum*

.. math::

    U = 2^{-h/2} \\sum_{y_1..y_k} e^{i\\varphi(x, y)}\\,
        |f_1(x,y), ..., f_n(x,y)\\rangle\\langle x|

where each wire function :math:`f_j` is an algebraic normal form over
GF(2) (:mod:`repro.lint.anf`), and the phase polynomial
:math:`\\varphi` is a real combination :math:`\\sum_P \\theta_P\\,
\\mathrm{val}(P)` of boolean-valued ANF terms.

* permutation gates (X, CX, SWAP, CCX, CSWAP) update wire functions;
* diagonal gates (RZ, P, Z, S, T, CZ, CP, CRZ, CCP, ...) add phase
  terms — products of boolean functions are expanded into XOR terms
  with the identity ``ab = (a + b - (a xor b)) / 2``;
* a Hadamard introduces a fresh *path variable* ``y`` with phase
  :math:`\\pi\\, y\\, f` and amplitude :math:`1/\\sqrt2`;
* every other 1q unitary is factored as
  :math:`e^{i\\alpha} P(a)\\, H\\, P(b)\\, H\\, P(c)` and replayed
  through the rules above, so SX, U, RX, RY all reduce to the same
  substrate.

``reduce()`` eliminates path variables with the sum-over-y identity
:math:`\\sum_y e^{i\\pi y g} = 2\\,[g = 0]` (the Elim/HH rules of the
path-sum verification literature): when the phase difference
:math:`\\varphi|_{y=1} - \\varphi|_{y=0}` normalises to
:math:`\\pi\\,\\mathrm{val}(h)`, the constraint ``h = 0`` is solved by
substituting a path variable that occurs linearly in ``h``.  A circuit
composed with the inverse of an equivalent circuit reduces to the
identity: no path variables, identity wire functions, empty phase
polynomial.  See :mod:`repro.lint.equivalence` for the verdict layer.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from .anf import (
    ANF,
    anf_and,
    anf_one,
    anf_render,
    anf_split,
    anf_substitute,
    anf_var,
    anf_vars,
    anf_xor,
    anf_zero,
)

__all__ = ["PathSum", "UnsupportedGateError", "ReductionOutcome", "php_factor"]

_TWO_PI = 2.0 * math.pi
_PI = math.pi

#: Fixed 1q diagonal gates as phase angles.
_DIAG_1Q = {
    "z": _PI,
    "s": _PI / 2,
    "sdg": -_PI / 2,
    "t": _PI / 4,
    "tdg": -_PI / 4,
}

#: Exact primitive expansions for controlled non-diagonal gates
#: (verified against the gate matrices in the test suite).
_CH_SEQ: Tuple[Tuple[str, ...], ...] = (
    ("s", "t"),
    ("h", "t"),
    ("t", "t"),
    ("cx", "c", "t"),
    ("tdg", "t"),
    ("h", "t"),
    ("sdg", "t"),
)
_CY_SEQ: Tuple[Tuple[str, ...], ...] = (
    ("sdg", "t"),
    ("cx", "c", "t"),
    ("s", "t"),
)


class UnsupportedGateError(ValueError):
    """Raised when a gate has no path-sum semantics here."""


class ReductionOutcome:
    """What ``reduce()`` left behind (see :meth:`PathSum.finish`)."""

    __slots__ = ("status", "detail")

    def __init__(self, status: str, detail: str = "") -> None:
        self.status = status  # "identity" | "not_identity" | "unknown"
        self.detail = detail

    def __repr__(self) -> str:
        return f"ReductionOutcome({self.status!r}, {self.detail!r})"


class PathSum:
    """Symbolic state of a circuit prefix (see module docs)."""

    def __init__(self, num_wires: int, atol: float = 1e-8) -> None:
        if num_wires < 1:
            raise ValueError("need at least one wire")
        self.num_wires = num_wires
        self.atol = float(atol)
        self.wires: List[ANF] = [anf_var(i) for i in range(num_wires)]
        #: phase polynomial: pure ANF (no constant monomial) -> angle.
        self.phase: Dict[ANF, float] = {}
        self.global_phase = 0.0
        self.half_power = 0  # power of 1/sqrt(2) in the prefactor
        self.path_vars: Set[int] = set()
        self._next_var = num_wires
        #: variable -> phase keys mentioning it (elimination index).
        self._var_terms: Dict[int, Set[ANF]] = {}

    # ------------------------------------------------------------------
    # Phase bookkeeping
    # ------------------------------------------------------------------
    def _wrap(self, theta: float) -> float:
        theta = math.fmod(theta, _TWO_PI)
        if theta < 0.0:
            theta += _TWO_PI
        if theta < self.atol or _TWO_PI - theta < self.atol:
            return 0.0
        return theta

    def _index_add(self, key: ANF) -> None:
        for v in anf_vars(key):
            self._var_terms.setdefault(v, set()).add(key)

    def _index_remove(self, key: ANF) -> None:
        for v in anf_vars(key):
            terms = self._var_terms.get(v)
            if terms is not None:
                terms.discard(key)
                if not terms:
                    del self._var_terms[v]

    def add_phase(self, theta: float, f: ANF) -> None:
        """Accumulate ``theta * val(f)`` into the phase polynomial."""
        if not f:  # constant 0
            return
        if frozenset() in f:  # f = 1 xor g  ->  theta - theta*val(g)
            self.global_phase = math.fmod(self.global_phase + theta, _TWO_PI)
            g = anf_xor(f, anf_one())
            if not g:
                return
            theta, f = -theta, g
        theta = self._wrap(theta)
        if theta == 0.0:
            return
        old = self.phase.get(f)
        if old is None:
            self.phase[f] = theta
            self._index_add(f)
            return
        new = self._wrap(old + theta)
        if new == 0.0:
            del self.phase[f]
            self._index_remove(f)
        else:
            self.phase[f] = new

    def add_product_phase(self, theta: float, f: ANF, g: ANF) -> None:
        """Accumulate ``theta * val(f) * val(g)`` (XOR-expanded)."""
        half = theta / 2.0
        self.add_phase(half, f)
        self.add_phase(half, g)
        self.add_phase(-half, anf_xor(f, g))

    def add_triple_phase(self, theta: float, a: ANF, b: ANF, c: ANF) -> None:
        """Accumulate ``theta * val(a) * val(b) * val(c)``."""
        quarter = theta / 4.0
        for f in (a, b, c):
            self.add_phase(quarter, f)
        for f, g in ((a, b), (a, c), (b, c)):
            self.add_phase(-quarter, anf_xor(f, g))
        self.add_phase(quarter, anf_xor(a, b, c))

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def _fresh_path_var(self) -> int:
        y = self._next_var
        self._next_var += 1
        self.path_vars.add(y)
        return y

    def _apply_h(self, wire: int) -> None:
        y = self._fresh_path_var()
        self.add_product_phase(_PI, self.wires[wire], anf_var(y))
        self.wires[wire] = anf_var(y)
        self.half_power += 1

    def _apply_seq(self, seq, binding: Dict[str, int]) -> None:
        for step in seq:
            name, wires = step[0], [binding[s] for s in step[1:]]
            if name == "cx":
                self._apply_cx(wires[0], wires[1])
            elif name == "h":
                self._apply_h(wires[0])
            else:
                self.add_phase(_DIAG_1Q[name], self.wires[wires[0]])

    def _apply_cx(self, c: int, t: int) -> None:
        self.wires[t] = anf_xor(self.wires[t], self.wires[c])

    def _apply_generic_1q(self, gate: Gate, wire: int) -> None:
        alpha, ops = php_factor(gate.matrix, self.atol)
        self.global_phase = math.fmod(self.global_phase + alpha, _TWO_PI)
        for kind, angle in ops:
            if kind == "p":
                self.add_phase(angle, self.wires[wire])
            elif kind == "h":
                self._apply_h(wire)
            else:  # "x"
                self.wires[wire] = anf_xor(self.wires[wire], anf_one())

    def _apply_generic_diagonal(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Möbius-expand a diagonal matrix into monomial phase terms."""
        k = gate.num_qubits
        if k > 3:
            raise UnsupportedGateError(
                f"diagonal gate {gate.name!r} too wide ({k} qubits)"
            )
        diag = gate.matrix.diagonal()
        angles = [cmath.phase(d) for d in diag]
        # Unweighted Möbius transform: coefficient for each bit subset.
        coeff: Dict[int, float] = {}
        for s in range(1 << k):
            total = angles[s]
            for t in range(s):
                if t | s == s:  # t proper subset of s
                    total -= coeff.get(t, 0.0)
            coeff[s] = total
        self.global_phase = math.fmod(
            self.global_phase + coeff.get(0, 0.0), _TWO_PI
        )
        for s in range(1, 1 << k):
            theta = coeff[s]
            if abs(theta) < self.atol:
                continue
            members = [self.wires[qubits[i]] for i in range(k) if s >> i & 1]
            if len(members) == 1:
                self.add_phase(theta, members[0])
            elif len(members) == 2:
                self.add_product_phase(theta, *members)
            else:
                self.add_triple_phase(theta, *members)

    def apply(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply ``gate`` on wire indices ``qubits``."""
        name = gate.name
        q = list(qubits)
        w = self.wires
        if name in ("barrier", "id"):
            return
        if name == "x":
            w[q[0]] = anf_xor(w[q[0]], anf_one())
        elif name == "cx":
            self._apply_cx(q[0], q[1])
        elif name == "swap":
            w[q[0]], w[q[1]] = w[q[1]], w[q[0]]
        elif name == "ccx":
            w[q[2]] = anf_xor(w[q[2]], anf_and(w[q[0]], w[q[1]]))
        elif name == "cswap":
            delta = anf_and(w[q[0]], anf_xor(w[q[1]], w[q[2]]))
            w[q[1]] = anf_xor(w[q[1]], delta)
            w[q[2]] = anf_xor(w[q[2]], delta)
        elif name == "p":
            self.add_phase(gate.params[0], w[q[0]])
        elif name == "rz":
            theta = gate.params[0]
            self.global_phase = math.fmod(
                self.global_phase - theta / 2.0, _TWO_PI
            )
            self.add_phase(theta, w[q[0]])
        elif name in _DIAG_1Q:
            self.add_phase(_DIAG_1Q[name], w[q[0]])
        elif name == "cz":
            self.add_product_phase(_PI, w[q[0]], w[q[1]])
        elif name == "cp":
            self.add_product_phase(gate.params[0], w[q[0]], w[q[1]])
        elif name == "crz":
            theta = gate.params[0]
            self.add_product_phase(theta, w[q[0]], w[q[1]])
            self.add_phase(-theta / 2.0, w[q[0]])
        elif name == "ccp":
            self.add_triple_phase(gate.params[0], w[q[0]], w[q[1]], w[q[2]])
        elif name == "h":
            self._apply_h(q[0])
        elif name == "ch":
            self._apply_seq(_CH_SEQ, {"c": q[0], "t": q[1]})
        elif name == "cy":
            self._apply_seq(_CY_SEQ, {"c": q[0], "t": q[1]})
        elif name == "cch":
            self._apply_seq(
                (("s", "t"), ("h", "t"), ("t", "t")), {"t": q[2]}
            )
            w[q[2]] = anf_xor(w[q[2]], anf_and(w[q[0]], w[q[1]]))
            self._apply_seq(
                (("tdg", "t"), ("h", "t"), ("sdg", "t")), {"t": q[2]}
            )
        elif gate.num_qubits == 1 and gate.is_unitary:
            self._apply_generic_1q(gate, q[0])
        elif gate.is_unitary and gate.is_diagonal:
            self._apply_generic_diagonal(gate, q)
        else:
            raise UnsupportedGateError(
                f"no path-sum semantics for {name!r} on {gate.num_qubits} qubits"
            )

    def apply_circuit(
        self,
        circuit: QuantumCircuit,
        inverse: bool = False,
        qubit_map: Optional[Dict[int, int]] = None,
    ) -> None:
        """Apply a whole circuit (optionally inverted / wire-remapped).

        Measure and reset ops raise :class:`UnsupportedGateError`;
        barriers are skipped.  ``qubit_map`` relabels circuit qubit
        ``q`` to path-sum wire ``qubit_map[q]``.
        """
        instrs = circuit.instructions
        if inverse:
            instrs = tuple(reversed(instrs))
        for instr in instrs:
            g = instr.gate
            if g.name == "barrier":
                continue
            if not g.is_unitary:
                raise UnsupportedGateError(
                    f"cannot apply non-unitary {g.name!r} to a path sum"
                )
            if inverse:
                g = g.inverse()
            qubits = instr.qubits
            if qubit_map is not None:
                qubits = tuple(qubit_map[q] for q in qubits)
            self.apply(g, qubits)

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def _delta(self, y: int) -> Tuple[Dict[ANF, float], float]:
        """Normalised ``phi|y=1 - phi|y=0`` over the keys mentioning ``y``.

        Returns ``(terms, const)`` with pure-ANF keys and angles in
        ``[0, 2*pi)``.
        """
        terms: Dict[ANF, float] = {}
        const = 0.0

        def acc(f: ANF, theta: float) -> None:
            nonlocal const
            if not f:
                return
            if frozenset() in f:
                const += theta
                g = anf_xor(f, anf_one())
                if not g:
                    return
                theta, f = -theta, g
            terms[f] = terms.get(f, 0.0) + theta

        for key in self._var_terms.get(y, set()):
            theta = self.phase[key]
            a, b = anf_split(key, y)
            acc(anf_xor(a, b), theta)  # val at y=1
            acc(b, -theta)  # minus val at y=0
        out: Dict[ANF, float] = {}
        for f, theta in terms.items():
            theta = self._wrap(theta)
            if theta != 0.0:
                out[f] = theta
        return out, self._wrap(const)

    def _drop_y_from_phase(self, y: int) -> None:
        """Replace every key mentioning ``y`` by its ``y=0`` cofactor."""
        for key in list(self._var_terms.get(y, set())):
            theta = self.phase.pop(key)
            self._index_remove(key)
            _, b = anf_split(key, y)
            self.add_phase(theta, b)

    def _substitute_var(self, var: int, replacement: ANF) -> None:
        """Substitute ``var := replacement`` in wires and phase."""
        for key in list(self._var_terms.get(var, set())):
            theta = self.phase.pop(key)
            self._index_remove(key)
            self.add_phase(theta, anf_substitute(key, var, replacement))
        for i, f in enumerate(self.wires):
            if any(var in m for m in f):
                self.wires[i] = anf_substitute(f, var, replacement)

    def _wire_mentions(self, var: int) -> bool:
        return any(any(var in m for m in f) for f in self.wires)

    def _try_eliminate(self, y: int) -> bool:
        delta, const = self._delta(y)
        if not delta and const == 0.0:
            # Phase independent of y: sum over y contributes a factor 2.
            if self._wire_mentions(y):
                return False
            self._drop_y_from_phase(y)
            self.path_vars.discard(y)
            self.half_power -= 2
            return True
        # Need delta == pi * val(h) + lambda with lambda in {0, pi,
        # +-pi/2}: all non-constant coefficients pi.
        if not all(abs(t - _PI) < self.atol for t in delta.values()):
            return False
        if abs(const - _PI / 2) < self.atol or abs(const - 3 * _PI / 2) < self.atol:
            # Omega rule: sum_y e^{i y (pi h +- pi/2)} =
            # sqrt(2) e^{+-i pi/4} e^{-+i pi/2 val(h)}.
            if self._wire_mentions(y):
                return False
            sign = 1.0 if abs(const - _PI / 2) < self.atol else -1.0
            h = anf_xor(*delta.keys()) if delta else anf_zero()
            self._drop_y_from_phase(y)
            self.global_phase = math.fmod(
                self.global_phase + sign * _PI / 4, _TWO_PI
            )
            self.add_phase(-sign * _PI / 2, h)
            self.path_vars.discard(y)
            self.half_power -= 1
            return True
        if abs(const - _PI) >= self.atol and const != 0.0:
            return False
        h = anf_xor(*delta.keys()) if delta else anf_zero()
        if abs(const - _PI) < self.atol:
            h = anf_xor(h, anf_one())
        if not h:
            # Delta is 0 as a function after the xor-fold identity.
            if self._wire_mentions(y):
                return False
            self._drop_y_from_phase(y)
            self.path_vars.discard(y)
            self.half_power -= 2
            return True
        # Constraint val(h) = 0: solve for a linearly-occurring path var.
        # Summing over y is only valid when no output (wire) depends on
        # it; wire-resident variables are removed as the *substituted*
        # variable of some other elimination instead.
        if self._wire_mentions(y):
            return False
        candidate = None
        h_vars = anf_vars(h)
        for z in sorted(h_vars & self.path_vars, reverse=True):
            if z == y:
                continue
            if frozenset({z}) in h and sum(1 for m in h if z in m) == 1:
                candidate = z
                break
        if candidate is None:
            return False
        replacement = anf_xor(h, frozenset({frozenset({candidate})}))
        self._drop_y_from_phase(y)
        self._substitute_var(candidate, replacement)
        self.path_vars.discard(y)
        self.path_vars.discard(candidate)
        self.half_power -= 2
        return True

    def reduce(self, max_rounds: Optional[int] = None) -> None:
        """Eliminate path variables until a fixed point."""
        rounds = 0
        progress = True
        while progress and self.path_vars:
            progress = False
            for y in sorted(self.path_vars, reverse=True):
                if y in self.path_vars and self._try_eliminate(y):
                    progress = True
            rounds += 1
            if max_rounds is not None and rounds >= max_rounds:
                return

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    def finish(
        self,
        expected_outputs: Optional[Dict[int, int]] = None,
        up_to_global_phase: bool = True,
    ) -> ReductionOutcome:
        """Judge whether the reduced sum is the identity (or the given
        wire permutation).

        ``expected_outputs`` maps wire index -> input variable id that
        must appear there; unconstrained wires need only hold *some*
        input variable, bijectively.  Identity is the default.
        """
        self.reduce()
        if self.path_vars:
            return ReductionOutcome(
                "unknown",
                f"{len(self.path_vars)} path variable(s) not eliminated",
            )
        if self.half_power != 0:
            return ReductionOutcome(
                "unknown", f"unbalanced amplitude 2^(-{self.half_power}/2)"
            )
        expected = dict(expected_outputs or {})
        seen_vars: Set[int] = set()
        for wire, f in enumerate(self.wires):
            want = expected.get(wire)
            if want is not None:
                if f != anf_var(want):
                    return ReductionOutcome(
                        "not_identity",
                        f"wire {wire} ends as {anf_render(f)}, expected x{want}",
                    )
                seen_vars.add(want)
                continue
            if len(f) == 1:
                (mono,) = f
                if len(mono) == 1:
                    seen_vars.update(mono)
                    continue
            return ReductionOutcome(
                "not_identity",
                f"wire {wire} ends as non-trivial function {anf_render(f)}",
            )
        if len(seen_vars) != self.num_wires:
            return ReductionOutcome(
                "not_identity", "output wires do not form a permutation"
            )
        if self.phase:
            if not all(
                all(len(m) == 1 for m in key) for key in self.phase
            ):
                return ReductionOutcome(
                    "unknown", "residual non-linear phase terms"
                )
            verdict = self._judge_linear_residual()
            if verdict is not None:
                return verdict
        if not up_to_global_phase:
            g = self._wrap(self.global_phase)
            if g != 0.0:
                return ReductionOutcome(
                    "not_identity", f"global phase {g:.6g}"
                )
        return ReductionOutcome("identity")

    def _judge_linear_residual(self) -> Optional[ReductionOutcome]:
        """Decide whether an all-linear residual phase is identically 0.

        Returns ``None`` when the residual vanishes on every input.
        Linear keys need not be GF(2)-independent (e.g. ``pi*x0 + pi*x1
        + pi*(x0^x1) == 0 mod 2pi``), so angle-pi keys are first folded
        into a single form via ``pi*f + pi*g == pi*(f^g)  (mod 2pi)``;
        what survives is then decided by direct evaluation over the
        involved variables (small residuals) or a linear-independence
        certificate (wide ones).
        """
        two_pi = 2.0 * math.pi
        tol = max(self.atol * 10.0, 1e-7)

        def is_zero(angle: float) -> bool:
            w = self._wrap(angle)
            return min(w, two_pi - w) <= tol

        folded: ANF = frozenset()
        others: List[Tuple[ANF, float]] = []
        for key, theta in self.phase.items():
            w = self._wrap(theta)
            if min(w, two_pi - w) <= tol:
                continue
            if abs(w - math.pi) <= tol:
                folded = folded ^ key  # XOR of linear forms
            else:
                others.append((key, w))
        if not others:
            if not folded:
                return None
            return ReductionOutcome(
                "not_identity",
                f"residual phase pi on {anf_render(folded)}",
            )
        forms = [key for key, _ in others]
        if folded:
            forms.append(folded)
        involved = sorted({v for f in forms for m in f for v in m})
        if len(involved) <= 16:
            pos = {v: i for i, v in enumerate(involved)}
            masks = [
                (sum(1 << pos[next(iter(m))] for m in key), w)
                for key, w in others
            ]
            if folded:
                masks.append(
                    (sum(1 << pos[next(iter(m))] for m in folded), math.pi)
                )
            for x in range(1, 1 << len(involved)):
                total = sum(
                    w for mask, w in masks if bin(mask & x).count("1") & 1
                )
                if not is_zero(total):
                    bits = {involved[i]: (x >> i) & 1 for i in pos.values()}
                    return ReductionOutcome(
                        "not_identity",
                        f"residual phase {self._wrap(total):.6g} on input "
                        f"{bits}",
                    )
            return None
        # Too wide to enumerate: a GF(2)-independent set of forms is a
        # sound inequivalence certificate (some input activates exactly
        # one key, whose angle is not 0 mod 2pi); otherwise stay agnostic.
        pivots: Dict[int, FrozenSet[int]] = {}
        for f in forms:
            vec = frozenset(next(iter(m)) for m in f)
            while vec:
                p = min(vec)
                if p not in pivots:
                    pivots[p] = vec
                    break
                vec = vec ^ pivots[p]
            else:
                return ReductionOutcome(
                    "unknown", "GF(2)-dependent residual phase terms"
                )
        return ReductionOutcome(
            "not_identity",
            f"residual phase {others[0][1]:.6g} on "
            f"{anf_render(others[0][0])}",
        )


def php_factor(
    mat, atol: float = 1e-10
) -> Tuple[float, List[Tuple[str, float]]]:
    """Factor a 2x2 unitary as ``e^{i a} * ops`` over {P, H, X}.

    Returns ``(alpha, ops)`` with ``ops`` in circuit (application)
    order; each op is ``("p", angle)``, ``("h", 0.0)`` or ``("x",
    0.0)``.  The generic form is :math:`e^{i\\alpha} P(a) H P(b) H
    P(c)`; diagonal and antidiagonal matrices use shorter forms.
    """
    import numpy as np

    m = np.asarray(mat, dtype=complex)
    if m.shape != (2, 2):
        raise UnsupportedGateError(f"php_factor needs a 2x2 matrix, got {m.shape}")
    a00, a01, a10, a11 = m[0, 0], m[0, 1], m[1, 0], m[1, 1]
    if abs(a01) < atol and abs(a10) < atol:
        alpha = cmath.phase(a00)
        lam = cmath.phase(a11) - alpha
        return alpha, [("p", lam)]
    if abs(a00) < atol and abs(a11) < atol:
        # e^{i alpha} P(a) X: [[0, e^{i alpha}], [e^{i(alpha+a)}, 0]]
        alpha = cmath.phase(a01)
        a = cmath.phase(a10) - alpha
        return alpha, [("x", 0.0), ("p", a)]
    b = 2.0 * math.atan2(abs(a01), abs(a00))
    alpha = cmath.phase(a00) - b / 2.0
    off = b / 2.0 - _PI / 2.0  # arg of (1 - e^{ib})/2 for b in (0, pi)
    c = cmath.phase(a01) - alpha - off
    a = cmath.phase(a10) - alpha - off
    return alpha, [
        ("p", c),
        ("h", 0.0),
        ("p", b),
        ("h", 0.0),
        ("p", a),
    ]
