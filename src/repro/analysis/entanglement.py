"""Entanglement analysis (paper §5: "Greater variation on how superposed
states are entangled may also be informative").

Quantum arithmetic *creates* entanglement: after ``|x>|y> -> |x>|x+y>``
a superposed operand leaves the registers correlated, and the paper
attributes the superposition-order sensitivity of its success rates to
exactly this correlation structure.  These helpers quantify it: reduced
density matrices by partial trace, von Neumann / Renyi entropies, and a
per-register report for arithmetic outputs.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "partial_trace",
    "von_neumann_entropy",
    "renyi2_entropy",
    "register_entanglement",
]


def _keep_matrix(
    state: np.ndarray, keep: Sequence[int], n: int
) -> np.ndarray:
    """Reshape a pure state into (kept, traced) matrix form."""
    state = np.asarray(state, dtype=complex).reshape(-1)
    if state.shape[0] != (1 << n):
        raise ValueError(f"state length {state.shape[0]} != 2**{n}")
    keep = list(keep)
    if len(set(keep)) != len(keep) or any(not 0 <= q < n for q in keep):
        raise ValueError(f"invalid keep set {keep}")
    rest = [q for q in range(n) if q not in keep]
    tensor = state.reshape((2,) * n)
    # Tensor axis for qubit q is n-1-q (C order).
    order = [n - 1 - q for q in reversed(keep)] + [
        n - 1 - q for q in reversed(rest)
    ]
    moved = np.transpose(tensor, order)
    return moved.reshape(1 << len(keep), 1 << len(rest))


def partial_trace(
    state: np.ndarray, keep: Sequence[int], n: int
) -> np.ndarray:
    """Reduced density matrix of ``keep`` qubits from a pure state.

    ``keep[i]`` becomes bit ``i`` of the reduced matrix index
    (little-endian, consistent with the rest of the library).
    """
    m = _keep_matrix(state, keep, n)
    return m @ m.conj().T


def von_neumann_entropy(rho: np.ndarray, base: float = 2.0) -> float:
    """``-tr(rho log rho)``, in bits by default."""
    w = np.linalg.eigvalsh(np.asarray(rho, dtype=complex))
    w = np.clip(np.real(w), 0.0, 1.0)
    w = w[w > 1e-14]
    return float(-(w * (np.log(w) / math.log(base))).sum())


def renyi2_entropy(rho: np.ndarray, base: float = 2.0) -> float:
    """``-log tr(rho^2)`` — the collision entropy, cheaper than VN."""
    purity = float(np.real(np.trace(rho @ rho)))
    purity = min(max(purity, 1e-300), 1.0)
    return float(-math.log(purity) / math.log(base))


def register_entanglement(
    state: np.ndarray, registers: Dict[str, Sequence[int]], n: int
) -> Dict[str, float]:
    """Von Neumann entropy of each named register's reduced state.

    For a pure global state, a register's entropy equals its
    entanglement with everything else; 0 means product form.
    """
    out = {}
    for name, qubits in registers.items():
        rho = partial_trace(state, list(qubits), n)
        out[name] = von_neumann_entropy(rho)
    return out
