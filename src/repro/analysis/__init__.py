"""Analytic models: error budgets and AQFT depth heuristics."""

from .budget import ErrorBudget, error_budget, predicted_no_error_probability
from .depth import (
    aqft_fidelity_profile,
    barenco_depth,
    empirical_optimal_depth,
    paper_depth_label,
)
from .entanglement import (
    partial_trace,
    register_entanglement,
    renyi2_entropy,
    von_neumann_entropy,
)

__all__ = [
    "partial_trace",
    "von_neumann_entropy",
    "renyi2_entropy",
    "register_entanglement",
    "ErrorBudget",
    "error_budget",
    "predicted_no_error_probability",
    "barenco_depth",
    "paper_depth_label",
    "aqft_fidelity_profile",
    "empirical_optimal_depth",
]
