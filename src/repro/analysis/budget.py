"""Analytic error-budget models.

The simplest useful predictor of a noisy circuit's success: with
independent depolarizing gate errors, the probability that *no* error
event fires anywhere in the circuit is

    P0 = (1 - e1)**G1 * (1 - e2)**G2

where ``e1``/``e2`` are the effective per-gate error-event probabilities
and ``G1``/``G2`` the 1q/2q gate counts.  Error-free shots always give a
correct sample; erred shots give an approximately uniform background at
high weight.  The model below turns that into a predicted per-instance
success probability under the paper's argmax criterion, which the
``analysis`` ablation benchmark compares against full simulation.

The Qiskit depolarizing parameter ``p`` fires a *non-identity* Pauli
with probability ``p*(4**k - 1)/4**k`` (see repro.noise.channels), so
``e = p * 3/4`` for 1q and ``p * 15/16`` for 2q gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit
from ..transpile.counts import gate_counts

__all__ = ["ErrorBudget", "error_budget", "predicted_no_error_probability"]


def _event_probability(p: float, k: int, convention: str = "qiskit") -> float:
    """Probability a depolarizing parameter ``p`` fires a real Pauli."""
    if convention == "qiskit":
        dim4 = 4**k
        return p * (dim4 - 1) / dim4
    if convention == "pauli":
        return p
    raise ValueError(f"unknown convention {convention!r}")


@dataclass(frozen=True)
class ErrorBudget:
    """Per-circuit noise accounting at given 1q/2q error rates."""

    gates_1q: int
    gates_2q: int
    p1q: float
    p2q: float
    convention: str = "qiskit"

    @property
    def expected_errors(self) -> float:
        """Mean number of Pauli error events per shot."""
        e1 = _event_probability(self.p1q, 1, self.convention)
        e2 = _event_probability(self.p2q, 2, self.convention)
        return self.gates_1q * e1 + self.gates_2q * e2

    @property
    def no_error_probability(self) -> float:
        """P(zero error events in a shot)."""
        e1 = _event_probability(self.p1q, 1, self.convention)
        e2 = _event_probability(self.p2q, 2, self.convention)
        return (1 - e1) ** self.gates_1q * (1 - e2) ** self.gates_2q

    def predicted_success_probability(
        self, num_correct: int, num_outcomes: int
    ) -> float:
        """Crude argmax-success estimate for one instance.

        Model: a fraction ``P0`` of shots lands on the ideal
        distribution (uniform over the ``num_correct`` correct
        outcomes); the rest scatters uniformly over all ``num_outcomes``
        strings.  Success requires each correct outcome to out-count the
        background; in expectation that holds when

            P0 / num_correct  >  (1 - P0) / num_outcomes

        Shot noise smears the threshold; this returns the expectation-
        level step function, useful as a regime indicator rather than a
        calibrated probability.
        """
        if num_correct < 1 or num_outcomes < num_correct:
            raise ValueError("need 1 <= num_correct <= num_outcomes")
        p0 = self.no_error_probability
        signal = p0 / num_correct
        background = (1 - p0) / num_outcomes
        return 1.0 if signal > background else 0.0

    def __str__(self) -> str:
        return (
            f"ErrorBudget(G1={self.gates_1q}, G2={self.gates_2q}, "
            f"lambda={self.expected_errors:.2f}, P0={self.no_error_probability:.3f})"
        )


def error_budget(
    circuit: QuantumCircuit,
    p1q: float = 0.0,
    p2q: float = 0.0,
    convention: str = "qiskit",
) -> ErrorBudget:
    """Budget for a transpiled circuit at the given error rates."""
    counts = gate_counts(circuit)
    return ErrorBudget(
        gates_1q=counts.one_qubit,
        gates_2q=counts.two_qubit,
        p1q=p1q,
        p2q=p2q,
        convention=convention,
    )


def predicted_no_error_probability(
    circuit: QuantumCircuit, p1q: float, p2q: float
) -> float:
    """Shorthand for :attr:`ErrorBudget.no_error_probability`."""
    return error_budget(circuit, p1q, p2q).no_error_probability
