"""AQFT depth analysis: the Barenco heuristic and empirical optima.

Paper §2 (citing Barenco et al. 1996): in the presence of decoherence,
the optimal AQFT depth approaches ``log2 n``.  The paper's own results
show "significant variation" around that heuristic depending on noise
level and superposition order.  These helpers compute both sides: the
heuristic, the exact AQFT-vs-QFT fidelity loss, and the depth that
maximises a sweep's measured success — feeding the E8 ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.qft import qft_circuit
from ..sim.statevector import StatevectorEngine

__all__ = [
    "barenco_depth",
    "paper_depth_label",
    "aqft_fidelity_profile",
    "empirical_optimal_depth",
]


def barenco_depth(n: int) -> int:
    """The log2(n) heuristic, rounded to the nearest valid depth."""
    return max(2, min(n, round(math.log2(n)) + 1))


def paper_depth_label(depth: Optional[int], n: int) -> str:
    """Library depth -> the paper's per-qubit-rotation-count label."""
    if depth is None or depth >= n:
        return "full"
    return str(depth - 1)


def aqft_fidelity_profile(
    n: int, trials: int = 8, seed: int = 0
) -> Dict[int, float]:
    """Mean |<AQFT_d psi | QFT psi>|^2 over random states, per depth.

    Quantifies the pure approximation error (no gate noise), the
    quantity the AQFT trades against decoherence.
    """
    rng = np.random.default_rng(seed)
    eng = StatevectorEngine()
    full = qft_circuit(n)
    out: Dict[int, float] = {}
    states = []
    for _ in range(trials):
        v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        states.append(v / np.linalg.norm(v))
    exact = [eng.run(full, v) for v in states]
    for d in range(1, n + 1):
        circ = qft_circuit(n, depth=d)
        fids = [
            eng.run(circ, v).fidelity(x) for v, x in zip(states, exact)
        ]
        out[d] = float(np.mean(fids))
    return out


def empirical_optimal_depth(sweep_result) -> Dict[float, Tuple[Optional[int], float]]:
    """Per error rate: (best depth, success %) from a finished sweep."""
    out: Dict[float, Tuple[Optional[int], float]] = {}
    for rate in sweep_result.config.error_rates:
        out[rate] = sweep_result.best_depth(rate)
    return out
