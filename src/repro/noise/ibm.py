"""IBM-superconducting-style noise presets.

The paper calibrates its sweeps around the average reported performance
of IBM superconducting machines circa the study: 0.2% single-qubit and
1.0% two-qubit (CX) depolarizing gate error.  These presets capture the
reference points and the exact sweep grids used in Figs. 3 and 4.
"""

from __future__ import annotations

from typing import List, Tuple

from .model import NoiseModel

__all__ = [
    "IBM_P1Q_REFERENCE",
    "IBM_P2Q_REFERENCE",
    "P1Q_SWEEP",
    "P2Q_SWEEP",
    "ibm_reference_model",
    "sweep_1q_models",
    "sweep_2q_models",
]

#: Average reported 1q gate error of IBM machines (paper §4, dashed line).
IBM_P1Q_REFERENCE = 0.002

#: Average reported 2q (CX) gate error of IBM machines (paper §4).
IBM_P2Q_REFERENCE = 0.010

#: 1q error-rate grid of the figure left columns (fractions, not %).
#: The x-origin (0.0) is the noise-free reference simulation.
P1Q_SWEEP: Tuple[float, ...] = (0.0, 0.002, 0.003, 0.004, 0.005)

#: 2q error-rate grid of the figure right columns.
P2Q_SWEEP: Tuple[float, ...] = (0.0, 0.007, 0.010, 0.015, 0.020)


def ibm_reference_model(convention: str = "qiskit") -> NoiseModel:
    """Both error types at the IBM reference rates simultaneously.

    The paper's figures isolate one error type at a time; this combined
    model supports the §5 'simultaneous simulation' extension.
    """
    return NoiseModel.depolarizing(
        p1q=IBM_P1Q_REFERENCE, p2q=IBM_P2Q_REFERENCE, convention=convention
    )


def sweep_1q_models(
    rates: Tuple[float, ...] = P1Q_SWEEP, convention: str = "qiskit"
) -> List[Tuple[float, NoiseModel]]:
    """(rate, model) pairs for a 1q-only sweep (figure left columns)."""
    return [
        (r, NoiseModel.depolarizing(p1q=r, convention=convention))
        for r in rates
    ]


def sweep_2q_models(
    rates: Tuple[float, ...] = P2Q_SWEEP, convention: str = "qiskit"
) -> List[Tuple[float, NoiseModel]]:
    """(rate, model) pairs for a 2q-only sweep (figure right columns)."""
    return [
        (r, NoiseModel.depolarizing(p2q=r, convention=convention))
        for r in rates
    ]
