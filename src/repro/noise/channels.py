"""Quantum error channels.

Three representations cover everything the study and its extensions need:

* :class:`PauliError` — a probabilistic mixture of Pauli strings.  This is
  the exact form of the depolarizing gate errors the paper sweeps, and is
  the cheapest to unravel in the trajectory engine (index permutations
  and sign flips only).
* :class:`KrausError` — a general CPTP map from Kraus operators
  (amplitude/phase damping, thermal relaxation).
* :class:`ResetError` — stochastic reset to a computational state.

Plus :class:`ReadoutError`, a classical bit-flip assignment matrix applied
to measured outcomes.

Depolarizing conventions
------------------------
``convention="qiskit"`` (default, matching the paper's Aer stack): the
parameter ``p`` gives the channel ``E(rho) = (1 - p) rho + p * I / 2**k``,
i.e. identity weight ``1 - p*(4**k - 1)/4**k`` and ``p / 4**k`` on each
non-identity Pauli.  ``convention="pauli"``: identity weight ``1 - p`` and
``p / (4**k - 1)`` on each non-identity Pauli.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .pauli import nontrivial_pauli_strings, pauli_matrix

__all__ = [
    "QuantumError",
    "PauliError",
    "KrausError",
    "ResetError",
    "ReadoutError",
    "NoiseError",
    "depolarizing_error",
    "bit_flip_error",
    "phase_flip_error",
    "amplitude_damping_error",
    "phase_damping_error",
    "thermal_relaxation_error",
    "kraus_from_choi",
]


class NoiseError(ValueError):
    """Raised for malformed channel construction."""


class QuantumError:
    """Base class for gate-attached error channels."""

    num_qubits: int

    def kraus_operators(self) -> List[np.ndarray]:
        """The channel as Kraus operators (little-endian matrices)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """A short content hash of the channel (used for compile caching).

        Two channels with equal fingerprints produce identical resolved
        noise tables, so a compiled program bound against one can be
        reused for the other.
        """
        h = hashlib.sha256()
        h.update(type(self).__name__.encode())
        h.update(str(self.num_qubits).encode())
        for k in self.kraus_operators():
            h.update(np.ascontiguousarray(k).tobytes())
        return h.hexdigest()[:16]

    def validate(self, atol: float = 1e-9) -> None:
        """Check trace preservation: sum_m K_m^dag K_m == I."""
        dim = 2**self.num_qubits
        acc = np.zeros((dim, dim), dtype=complex)
        for k in self.kraus_operators():
            acc += k.conj().T @ k
        if not np.allclose(acc, np.eye(dim), atol=atol):
            raise NoiseError(f"{self!r} is not trace preserving")


class PauliError(QuantumError):
    """A probabilistic mixture of Pauli strings.

    Parameters
    ----------
    paulis:
        Pauli strings, all the same length; char ``i`` acts on gate
        qubit argument ``i``.
    probs:
        Probabilities, summing to 1 (an implicit identity term is *not*
        added — include ``"I"*k`` explicitly).
    """

    def __init__(self, paulis: Sequence[str], probs: Sequence[float]) -> None:
        if len(paulis) != len(probs):
            raise NoiseError("paulis and probs must have equal length")
        if not paulis:
            raise NoiseError("empty Pauli error")
        k = len(paulis[0])
        if any(len(p) != k for p in paulis):
            raise NoiseError("all Pauli strings must have equal length")
        if len(set(paulis)) != len(paulis):
            raise NoiseError(f"duplicate Pauli strings in {list(paulis)}")
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(probs_arr < -1e-12):
            raise NoiseError(f"negative probability in {probs}")
        total = float(probs_arr.sum())
        if abs(total - 1.0) > 1e-8:
            raise NoiseError(f"probabilities sum to {total}, expected 1")
        self.paulis: Tuple[str, ...] = tuple(paulis)
        self.probs: np.ndarray = np.clip(probs_arr, 0.0, 1.0)
        self.probs /= self.probs.sum()
        self.num_qubits = k

    @property
    def identity_prob(self) -> float:
        """Probability of the identity outcome (0 if not present)."""
        for p, pr in zip(self.paulis, self.probs):
            if set(p) == {"I"}:
                return float(pr)
        return 0.0

    def kraus_operators(self) -> List[np.ndarray]:
        return [
            math.sqrt(pr) * pauli_matrix(p)
            for p, pr in zip(self.paulis, self.probs)
            if pr > 0
        ]

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample ``size`` outcome indices into :attr:`paulis`."""
        return rng.choice(len(self.paulis), size=size, p=self.probs)

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        h.update(b"PauliError")
        h.update("|".join(self.paulis).encode())
        h.update(self.probs.tobytes())
        return h.hexdigest()[:16]

    def __repr__(self) -> str:
        terms = ", ".join(
            f"{p}:{pr:.4g}" for p, pr in zip(self.paulis, self.probs)
        )
        return f"PauliError({terms})"


class KrausError(QuantumError):
    """A general CPTP channel given by Kraus operators."""

    def __init__(self, kraus: Sequence[np.ndarray]) -> None:
        if not kraus:
            raise NoiseError("empty Kraus list")
        mats = [np.asarray(k, dtype=complex) for k in kraus]
        dim = mats[0].shape[0]
        k = int(round(math.log2(dim)))
        if 2**k != dim or any(m.shape != (dim, dim) for m in mats):
            raise NoiseError("Kraus operators must be square, power-of-2 dim")
        self.kraus: List[np.ndarray] = mats
        self.num_qubits = k
        self.validate(atol=1e-7)

    def kraus_operators(self) -> List[np.ndarray]:
        return list(self.kraus)

    def __repr__(self) -> str:
        return f"KrausError({len(self.kraus)} ops, {self.num_qubits}q)"


class ResetError(QuantumError):
    """Stochastic reset: with prob ``p0`` reset to |0>, ``p1`` to |1>."""

    def __init__(self, p0: float, p1: float = 0.0) -> None:
        if p0 < 0 or p1 < 0 or p0 + p1 > 1 + 1e-12:
            raise NoiseError(f"invalid reset probabilities ({p0}, {p1})")
        self.p0 = float(p0)
        self.p1 = float(p1)
        self.num_qubits = 1

    def fingerprint(self) -> str:
        h = hashlib.sha256(f"ResetError|{self.p0!r}|{self.p1!r}".encode())
        return h.hexdigest()[:16]

    def kraus_operators(self) -> List[np.ndarray]:
        ops = [math.sqrt(1 - self.p0 - self.p1) * np.eye(2, dtype=complex)]
        if self.p0 > 0:
            r = math.sqrt(self.p0)
            ops.append(r * np.array([[1, 0], [0, 0]], dtype=complex))
            ops.append(r * np.array([[0, 1], [0, 0]], dtype=complex))
        if self.p1 > 0:
            r = math.sqrt(self.p1)
            ops.append(r * np.array([[0, 0], [1, 0]], dtype=complex))
            ops.append(r * np.array([[0, 0], [0, 1]], dtype=complex))
        return ops

    def __repr__(self) -> str:
        return f"ResetError(p0={self.p0}, p1={self.p1})"


class ReadoutError:
    """Classical measurement-assignment error for one qubit.

    ``p01`` = P(read 1 | true 0), ``p10`` = P(read 0 | true 1).
    """

    def __init__(self, p01: float, p10: Optional[float] = None) -> None:
        if p10 is None:
            p10 = p01
        if not (0 <= p01 <= 1 and 0 <= p10 <= 1):
            raise NoiseError(f"invalid readout probabilities ({p01}, {p10})")
        self.p01 = float(p01)
        self.p10 = float(p10)

    @property
    def assignment_matrix(self) -> np.ndarray:
        """Rows: measured value; columns: true value."""
        return np.array(
            [[1 - self.p01, self.p10], [self.p01, 1 - self.p10]], dtype=float
        )

    def fingerprint(self) -> str:
        h = hashlib.sha256(f"ReadoutError|{self.p01!r}|{self.p10!r}".encode())
        return h.hexdigest()[:16]

    def __repr__(self) -> str:
        return f"ReadoutError(p01={self.p01}, p10={self.p10})"


# ---------------------------------------------------------------------------
# Channel constructors
# ---------------------------------------------------------------------------

def depolarizing_error(
    p: float, num_qubits: int = 1, convention: str = "qiskit"
) -> PauliError:
    """Depolarizing channel on ``num_qubits`` qubits (see module docs)."""
    if p < 0:
        raise NoiseError(f"negative depolarizing parameter {p}")
    dim4 = 4**num_qubits
    if convention == "qiskit":
        if p > dim4 / (dim4 - 1) + 1e-12:
            raise NoiseError(f"depolarizing parameter {p} out of range")
        each = p / dim4
        ident = 1.0 - p * (dim4 - 1) / dim4
    elif convention == "pauli":
        if p > 1 + 1e-12:
            raise NoiseError(f"depolarizing parameter {p} out of range")
        each = p / (dim4 - 1)
        ident = 1.0 - p
    else:
        raise NoiseError(f"unknown depolarizing convention {convention!r}")
    paulis = ["I" * num_qubits] + nontrivial_pauli_strings(num_qubits)
    probs = [ident] + [each] * (dim4 - 1)
    return PauliError(paulis, probs)


def bit_flip_error(p: float) -> PauliError:
    """X with probability ``p``."""
    return PauliError(["I", "X"], [1 - p, p])


def phase_flip_error(p: float) -> PauliError:
    """Z with probability ``p``."""
    return PauliError(["I", "Z"], [1 - p, p])


def amplitude_damping_error(gamma: float) -> KrausError:
    """Energy relaxation |1> -> |0> with probability ``gamma``."""
    if not 0 <= gamma <= 1:
        raise NoiseError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausError([k0, k1])


def phase_damping_error(lam: float) -> KrausError:
    """Pure dephasing with parameter ``lam``."""
    if not 0 <= lam <= 1:
        raise NoiseError(f"lambda must be in [0, 1], got {lam}")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausError([k0, k1])


def kraus_from_choi(choi: np.ndarray, atol: float = 1e-10) -> List[np.ndarray]:
    """Extract Kraus operators from a Choi matrix (column-stacking).

    The Choi matrix here is ``C = sum_{ij} |i><j| (x) E(|i><j|)`` with the
    system index slow and the output index fast; eigen-decomposition gives
    ``K_m = sqrt(w_m) * unvec(v_m)``.
    """
    choi = np.asarray(choi, dtype=complex)
    dim2 = choi.shape[0]
    dim = int(round(math.sqrt(dim2)))
    if dim * dim != dim2:
        raise NoiseError(f"Choi matrix has invalid dimension {dim2}")
    w, v = np.linalg.eigh((choi + choi.conj().T) / 2)
    ops = []
    for val, vec in zip(w, v.T):
        if val < -1e-8:
            raise NoiseError(f"Choi matrix not PSD (eigenvalue {val})")
        if val > atol:
            ops.append(math.sqrt(val) * vec.reshape(dim, dim).T)
    return ops


def thermal_relaxation_error(
    t1: float,
    t2: float,
    gate_time: float,
    excited_state_population: float = 0.0,
) -> QuantumError:
    """T1/T2 relaxation over ``gate_time`` (paper §5 future-work channel).

    For ``t2 <= t1`` the channel is a probabilistic mixture of identity,
    Z, and reset (returned as Kraus); for ``t1 < t2 <= 2 t1`` the channel
    is built from its Choi matrix.  Mirrors Aer's semantics.
    """
    if t1 <= 0 or t2 <= 0:
        raise NoiseError("t1 and t2 must be positive")
    if t2 > 2 * t1:
        raise NoiseError("t2 must be <= 2 * t1 for a physical channel")
    if gate_time < 0:
        raise NoiseError("gate_time must be non-negative")
    p1 = float(excited_state_population)
    if not 0 <= p1 <= 1:
        raise NoiseError("excited_state_population must be in [0, 1]")
    rate1 = gate_time / t1
    rate2 = gate_time / t2
    p_reset = 1 - math.exp(-rate1)

    if t2 <= t1:
        # Mixture of I, Z, reset-to-0, reset-to-1.  The pure-dephasing
        # rate is 1/t2 - 1/t1 (compute the ratio in the exponent to stay
        # finite for very long gate times).
        p_z = (1 - p_reset) * (1 - math.exp(-(rate2 - rate1))) / 2
        p_r0 = (1 - p1) * p_reset
        p_r1 = p1 * p_reset
        p_i = 1 - p_z - p_r0 - p_r1
        zero = np.zeros((2, 2), dtype=complex)
        ops: List[np.ndarray] = []
        if p_i > 0:
            ops.append(math.sqrt(p_i) * np.eye(2, dtype=complex))
        if p_z > 0:
            ops.append(
                math.sqrt(p_z) * np.array([[1, 0], [0, -1]], dtype=complex)
            )
        if p_r0 > 0:
            r = math.sqrt(p_r0)
            m0 = zero.copy()
            m0[0, 0] = r
            m1 = zero.copy()
            m1[0, 1] = r
            ops.extend([m0, m1])
        if p_r1 > 0:
            r = math.sqrt(p_r1)
            m0 = zero.copy()
            m0[1, 0] = r
            m1 = zero.copy()
            m1[1, 1] = r
            ops.extend([m0, m1])
        return KrausError(ops)

    # t1 < t2 <= 2*t1: build the Choi matrix directly.
    e1 = math.exp(-rate1)
    e2 = math.exp(-rate2)
    choi = np.array(
        [
            [1 - p1 * p_reset, 0, 0, e2],
            [0, p1 * p_reset, 0, 0],
            [0, 0, (1 - p1) * p_reset, 0],
            [e2, 0, 0, 1 - (1 - p1) * p_reset],
        ],
        dtype=complex,
    )
    _ = e1  # rate bookkeeping; e1 enters via p_reset
    return KrausError(kraus_from_choi(choi))
