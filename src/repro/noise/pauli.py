"""Pauli-string utilities.

A Pauli string is a str over ``"IXYZ"`` where character ``i`` acts on the
``i``-th qubit *argument* of the gate it decorates (little-endian by list
position — the same ordering as gate qubit arguments, so no reversal is
ever needed).
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

__all__ = [
    "PAULI_CHARS",
    "PAULI_MATRICES",
    "pauli_matrix",
    "all_pauli_strings",
    "nontrivial_pauli_strings",
    "pauli_weight",
    "compose_paulis",
]

PAULI_CHARS = "IXYZ"

PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-qubit Pauli multiplication table: (a, b) -> (phase, c) with
# sigma_a sigma_b = phase * sigma_c.
_MUL: dict = {}
for _a in PAULI_CHARS:
    for _b in PAULI_CHARS:
        prod = PAULI_MATRICES[_a] @ PAULI_MATRICES[_b]
        for _c in PAULI_CHARS:
            for _ph in (1, -1, 1j, -1j):
                if np.allclose(prod, _ph * PAULI_MATRICES[_c]):
                    _MUL[(_a, _b)] = (_ph, _c)
del _a, _b, _c, _ph, prod


def pauli_matrix(label: str) -> np.ndarray:
    """Little-endian matrix of a Pauli string (char i = qubit argument i)."""
    if not label or any(ch not in PAULI_CHARS for ch in label):
        raise ValueError(f"invalid Pauli label {label!r}")
    # Matrix bit i corresponds to argument i => argument 0 is the LSB,
    # which in a Kronecker product is the *rightmost* factor.
    mat = PAULI_MATRICES[label[-1]]
    for ch in reversed(label[:-1]):
        mat = np.kron(mat, PAULI_MATRICES[ch])
    return mat


def all_pauli_strings(num_qubits: int) -> List[str]:
    """All 4**n Pauli strings on ``num_qubits`` qubits, identity first."""
    return [
        "".join(t) for t in itertools.product(PAULI_CHARS, repeat=num_qubits)
    ]


def nontrivial_pauli_strings(num_qubits: int) -> List[str]:
    """All Pauli strings except the identity."""
    return [s for s in all_pauli_strings(num_qubits) if set(s) != {"I"}]


def pauli_weight(label: str) -> int:
    """Number of non-identity characters."""
    return sum(1 for ch in label if ch != "I")


def compose_paulis(a: str, b: str) -> Tuple[complex, str]:
    """Product ``a @ b`` of two equal-length Pauli strings.

    Returns ``(phase, string)`` with ``pauli(a) @ pauli(b) ==
    phase * pauli(string)``.
    """
    if len(a) != len(b):
        raise ValueError("Pauli strings must have equal length")
    phase: complex = 1.0
    out = []
    for ca, cb in zip(a, b):
        ph, cc = _MUL[(ca, cb)]
        phase *= ph
        out.append(cc)
    return phase, "".join(out)
