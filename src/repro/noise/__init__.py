"""Noise channels, noise models, and IBM-style presets."""

from .channels import (
    KrausError,
    NoiseError,
    PauliError,
    QuantumError,
    ReadoutError,
    ResetError,
    amplitude_damping_error,
    bit_flip_error,
    depolarizing_error,
    phase_damping_error,
    phase_flip_error,
    thermal_relaxation_error,
)
from .ibm import (
    IBM_P1Q_REFERENCE,
    IBM_P2Q_REFERENCE,
    P1Q_SWEEP,
    P2Q_SWEEP,
    ibm_reference_model,
    sweep_1q_models,
    sweep_2q_models,
)
from .model import GATES_1Q_DEFAULT, GATES_2Q_DEFAULT, NoiseModel
from .pauli import (
    all_pauli_strings,
    compose_paulis,
    nontrivial_pauli_strings,
    pauli_matrix,
    pauli_weight,
)

__all__ = [
    "NoiseModel",
    "QuantumError",
    "PauliError",
    "KrausError",
    "ResetError",
    "ReadoutError",
    "NoiseError",
    "depolarizing_error",
    "bit_flip_error",
    "phase_flip_error",
    "amplitude_damping_error",
    "phase_damping_error",
    "thermal_relaxation_error",
    "GATES_1Q_DEFAULT",
    "GATES_2Q_DEFAULT",
    "IBM_P1Q_REFERENCE",
    "IBM_P2Q_REFERENCE",
    "P1Q_SWEEP",
    "P2Q_SWEEP",
    "ibm_reference_model",
    "sweep_1q_models",
    "sweep_2q_models",
    "pauli_matrix",
    "all_pauli_strings",
    "nontrivial_pauli_strings",
    "pauli_weight",
    "compose_paulis",
]
