"""Synthetic backend calibrations -> per-qubit noise models.

The paper uses *uniform* gate error rates "designed to reflect the
current performance of IBM superconducting quantum computers (though
with qubit counts and connectivity not currently available)".  Real
calibration data is per-qubit and per-edge; this module generates
synthetic calibration snapshots with IBM-era statistics and builds the
corresponding qubit-resolved :class:`NoiseModel` — the substitution for
the proprietary backend-properties API (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..transpile.layout import CouplingMap, full_coupling
from .channels import ReadoutError, depolarizing_error, thermal_relaxation_error
from .model import GATES_1Q_DEFAULT, NoiseModel

__all__ = ["QubitCalibration", "BackendCalibration", "synthetic_calibration"]


@dataclass(frozen=True)
class QubitCalibration:
    """One qubit's calibration snapshot (IBM-properties shaped)."""

    t1_us: float
    t2_us: float
    error_1q: float
    readout_p01: float
    readout_p10: float

    def validate(self) -> None:
        """Range-check every field; raises ValueError when unphysical."""
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("T1/T2 must be positive")
        if self.t2_us > 2 * self.t1_us:
            raise ValueError("T2 must be <= 2*T1")
        for p in (self.error_1q, self.readout_p01, self.readout_p10):
            if not 0 <= p <= 1:
                raise ValueError(f"probability {p} out of range")


@dataclass
class BackendCalibration:
    """A full device snapshot: per-qubit data plus per-edge CX errors."""

    qubits: List[QubitCalibration]
    cx_errors: Dict[Tuple[int, int], float]
    coupling: CouplingMap
    gate_time_1q_ns: float = 35.0
    gate_time_2q_ns: float = 300.0
    name: str = "synthetic"

    @property
    def num_qubits(self) -> int:
        """Device size."""
        return len(self.qubits)

    def mean_error_1q(self) -> float:
        """Average per-qubit 1q gate error."""
        return float(np.mean([q.error_1q for q in self.qubits]))

    def mean_error_2q(self) -> float:
        """Average per-edge CX error."""
        return float(np.mean(list(self.cx_errors.values())))

    def to_noise_model(
        self,
        include_thermal: bool = False,
        include_readout: bool = True,
        gates_1q: Sequence[str] = GATES_1Q_DEFAULT,
    ) -> NoiseModel:
        """Qubit-resolved noise model from this snapshot.

        Depolarizing errors are attached per qubit (1q) and per directed
        edge (2q); optionally layered with thermal relaxation from the
        per-qubit T1/T2 and the snapshot's gate durations, and with the
        per-qubit readout assignment errors.
        """
        model = NoiseModel(name=f"calibrated({self.name})")
        for q, cal in enumerate(self.qubits):
            cal.validate()
            err = depolarizing_error(cal.error_1q, 1)
            for g in gates_1q:
                model.add_quantum_error(err, g, [q])
            if include_thermal:
                th = thermal_relaxation_error(
                    cal.t1_us * 1e3, cal.t2_us * 1e3, self.gate_time_1q_ns
                )
                for g in gates_1q:
                    model.add_quantum_error(th, g, [q])
            if include_readout:
                model.add_readout_error(
                    ReadoutError(cal.readout_p01, cal.readout_p10), qubit=q
                )
        for (a, b), p in self.cx_errors.items():
            err = depolarizing_error(p, 2)
            model.add_quantum_error(err, "cx", [a, b])
            model.add_quantum_error(err, "cx", [b, a])
            if include_thermal:
                # A 1q thermal channel attached to a 2q gate is expanded
                # over both qubits by the engines; use the slower qubit's
                # relaxation as the conservative shared channel.
                slow = min((a, b), key=lambda q: self.qubits[q].t1_us)
                th = thermal_relaxation_error(
                    self.qubits[slow].t1_us * 1e3,
                    self.qubits[slow].t2_us * 1e3,
                    self.gate_time_2q_ns,
                )
                model.add_quantum_error(th, "cx", [a, b])
                model.add_quantum_error(th, "cx", [b, a])
        return model


def synthetic_calibration(
    num_qubits: int,
    seed: int = 0,
    coupling: Optional[CouplingMap] = None,
    mean_error_1q: float = 0.002,
    mean_error_2q: float = 0.010,
    spread: float = 0.35,
    mean_t1_us: float = 100.0,
    mean_readout: float = 0.02,
) -> BackendCalibration:
    """Generate a plausible IBM-style snapshot.

    Per-qubit quantities are log-normally scattered around the supplied
    means (``spread`` is the log-space sigma), matching the order-of-
    magnitude variation real calibration tables show.
    """
    rng = np.random.default_rng(seed)
    if coupling is None:
        coupling = full_coupling(num_qubits)
    if coupling.size < num_qubits:
        raise ValueError("coupling map smaller than qubit count")

    def scatter(mean: float, size: int) -> np.ndarray:
        return mean * rng.lognormal(mean=0.0, sigma=spread, size=size)

    t1 = scatter(mean_t1_us, num_qubits)
    # T2 <= 2*T1, typically below T1 on IBM devices.
    t2 = np.minimum(scatter(mean_t1_us * 0.8, num_qubits), 2 * t1 * 0.99)
    e1 = np.clip(scatter(mean_error_1q, num_qubits), 1e-6, 0.5)
    ro = np.clip(scatter(mean_readout, 2 * num_qubits), 1e-5, 0.5)
    qubits = [
        QubitCalibration(
            t1_us=float(t1[q]),
            t2_us=float(t2[q]),
            error_1q=float(e1[q]),
            readout_p01=float(ro[2 * q]),
            readout_p10=float(ro[2 * q + 1]),
        )
        for q in range(num_qubits)
    ]
    edges = [
        (a, b)
        for (a, b) in coupling.edges
        if a < num_qubits and b < num_qubits
    ]
    e2 = np.clip(scatter(mean_error_2q, len(edges)), 1e-5, 0.5)
    cx_errors = {edge: float(p) for edge, p in zip(edges, e2)}
    return BackendCalibration(
        qubits=qubits,
        cx_errors=cx_errors,
        coupling=coupling,
        name=f"synthetic(seed={seed})",
    )
