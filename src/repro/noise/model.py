"""Noise models: mapping circuit instructions to error channels.

A :class:`NoiseModel` mirrors the Aer concept used by the paper: errors
are attached to *gate names* (optionally to specific qubits), and every
matching instruction in a simulated circuit is followed by its error
channel.  The paper's models attach a 1q depolarizing channel to every
single-qubit basis gate and a 2q depolarizing channel to ``cx``, with all
other error sources (reset, readout, thermal) disabled — those channels
are still supported here for the §5 extension experiments.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Instruction
from .channels import (
    NoiseError,
    QuantumError,
    ReadoutError,
    depolarizing_error,
    thermal_relaxation_error,
)

__all__ = ["NoiseModel", "GATES_1Q_DEFAULT", "GATES_2Q_DEFAULT"]

# The IBM universal basis used throughout the paper (§4): Id, X, RZ, SX, CX.
GATES_1Q_DEFAULT: Tuple[str, ...] = ("id", "x", "sx", "rz")
GATES_2Q_DEFAULT: Tuple[str, ...] = ("cx",)

# Instruction names that never receive gate errors.
_NEVER_NOISY = frozenset({"barrier", "measure", "reset"})


class NoiseModel:
    """Gate-keyed error channels plus readout error.

    Use :meth:`add_all_qubit_quantum_error` for uniform noise (the
    paper's setting) or :meth:`add_quantum_error` for qubit-specific
    noise.  Qubit-specific entries take precedence over all-qubit ones.
    """

    def __init__(self, name: str = "noise") -> None:
        self.name = name
        self._all_qubit: Dict[str, List[QuantumError]] = {}
        self._local: Dict[Tuple[str, Tuple[int, ...]], List[QuantumError]] = {}
        self._readout_all: Optional[ReadoutError] = None
        self._readout_local: Dict[int, ReadoutError] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_all_qubit_quantum_error(
        self, error: QuantumError, gate_names: Iterable[str]
    ) -> "NoiseModel":
        """Attach ``error`` after every occurrence of the named gates."""
        for name in gate_names:
            if name in _NEVER_NOISY:
                raise NoiseError(f"cannot attach gate error to {name!r}")
            self._all_qubit.setdefault(name, []).append(error)
        return self

    def add_quantum_error(
        self,
        error: QuantumError,
        gate_name: str,
        qubits: Sequence[int],
    ) -> "NoiseModel":
        """Attach ``error`` to ``gate_name`` on the exact qubit tuple."""
        if gate_name in _NEVER_NOISY:
            raise NoiseError(f"cannot attach gate error to {gate_name!r}")
        key = (gate_name, tuple(int(q) for q in qubits))
        self._local.setdefault(key, []).append(error)
        return self

    def add_readout_error(
        self, error: ReadoutError, qubit: Optional[int] = None
    ) -> "NoiseModel":
        """Attach a readout error to one qubit, or to all if ``None``."""
        if qubit is None:
            self._readout_all = error
        else:
            self._readout_local[int(qubit)] = error
        return self

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def gate_errors(self, instr: Instruction) -> List[QuantumError]:
        """Error channels to apply after ``instr`` (possibly empty)."""
        name = instr.gate.name
        if name in _NEVER_NOISY:
            return []
        local = self._local.get((name, instr.qubits))
        if local is not None:
            return local
        return self._all_qubit.get(name, [])

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        """Readout error for ``qubit``, or ``None``."""
        return self._readout_local.get(qubit, self._readout_all)

    def errors_for(
        self, gate_name: str, qubits: Sequence[int]
    ) -> List[Tuple[Tuple, QuantumError]]:
        """Error channels for a (gate name, qubit tuple) site with slots.

        Like :meth:`gate_errors` but keyed by name/qubits directly and
        returning ``(slot, error)`` pairs, where ``slot`` is a stable
        address (``("all", name, i)`` or ``("local", name, qubits, i)``)
        that :meth:`error_by_slot` resolves again later.  The compile
        pipeline lowers a circuit against the *slots* (rate-independent)
        and re-resolves the channels when binding a specific model.
        """
        if gate_name in _NEVER_NOISY:
            return []
        qt = tuple(int(q) for q in qubits)
        local = self._local.get((gate_name, qt))
        if local is not None:
            return [
                (("local", gate_name, qt, i), err)
                for i, err in enumerate(local)
            ]
        return [
            (("all", gate_name, i), err)
            for i, err in enumerate(self._all_qubit.get(gate_name, []))
        ]

    def error_by_slot(self, slot: Tuple) -> QuantumError:
        """Resolve a slot produced by :meth:`errors_for`."""
        if slot[0] == "local":
            return self._local[(slot[1], slot[2])][slot[3]]
        return self._all_qubit[slot[1]][slot[2]]

    def structure_key(self) -> Tuple:
        """A hashable key for the model's *shape*, ignoring rates.

        Two models share a structure key iff they attach channels of the
        same arity to the same gate names/qubit tuples — exactly the
        condition under which a lowered program skeleton (op layout and
        noise-site placement) can be shared between them.  Rate-only
        sweeps therefore lower once and re-bind per rate.
        """
        allq = tuple(
            sorted(
                (name, tuple(e.num_qubits for e in errs))
                for name, errs in self._all_qubit.items()
            )
        )
        local = tuple(
            sorted(
                (name, qs, tuple(e.num_qubits for e in errs))
                for (name, qs), errs in self._local.items()
            )
        )
        return (allq, local)

    def fingerprint(self) -> str:
        """A short content hash covering every channel and rate."""
        h = hashlib.sha256()
        for name in sorted(self._all_qubit):
            h.update(f"all|{name}".encode())
            for err in self._all_qubit[name]:
                h.update(err.fingerprint().encode())
        for name, qs in sorted(self._local):
            h.update(f"local|{name}|{qs}".encode())
            for err in self._local[(name, qs)]:
                h.update(err.fingerprint().encode())
        if self._readout_all is not None:
            h.update(b"ro-all")
            h.update(self._readout_all.fingerprint().encode())
        for q in sorted(self._readout_local):
            h.update(f"ro|{q}".encode())
            h.update(self._readout_local[q].fingerprint().encode())
        return h.hexdigest()[:16]

    @property
    def is_ideal(self) -> bool:
        """True when the model contains no errors at all."""
        return not (
            self._all_qubit
            or self._local
            or self._readout_all
            or self._readout_local
        )

    @property
    def noisy_gate_names(self) -> Tuple[str, ...]:
        """Sorted names of gates that carry at least one error."""
        names = set(self._all_qubit)
        names.update(k[0] for k in self._local)
        return tuple(sorted(names))

    def __repr__(self) -> str:
        return (
            f"<NoiseModel {self.name!r}: gates={list(self.noisy_gate_names)}, "
            f"readout={'yes' if self._readout_all or self._readout_local else 'no'}>"
        )

    # ------------------------------------------------------------------
    # Convenience constructors (the paper's models)
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "NoiseModel":
        """The noise-free reference model (x-origin points in Figs. 3-4)."""
        return cls(name="ideal")

    @classmethod
    def depolarizing(
        cls,
        p1q: float = 0.0,
        p2q: float = 0.0,
        gates_1q: Sequence[str] = GATES_1Q_DEFAULT,
        gates_2q: Sequence[str] = GATES_2Q_DEFAULT,
        convention: str = "qiskit",
    ) -> "NoiseModel":
        """The paper's model: isolated 1q-/2q-gate depolarizing errors.

        ``p1q``/``p2q`` are *probabilities*, not percent — the paper's
        0.2% 1q reference point is ``p1q=0.002``.
        """
        model = cls(name=f"depol(p1q={p1q}, p2q={p2q})")
        if p1q > 0:
            model.add_all_qubit_quantum_error(
                depolarizing_error(p1q, 1, convention), gates_1q
            )
        if p2q > 0:
            model.add_all_qubit_quantum_error(
                depolarizing_error(p2q, 2, convention), gates_2q
            )
        return model

    @classmethod
    def thermal(
        cls,
        t1: float,
        t2: float,
        time_1q: float,
        time_2q: float,
        gates_1q: Sequence[str] = GATES_1Q_DEFAULT,
        gates_2q: Sequence[str] = GATES_2Q_DEFAULT,
        excited_state_population: float = 0.0,
    ) -> "NoiseModel":
        """T1/T2 relaxation attached per gate duration (§5 extension)."""
        model = cls(name=f"thermal(t1={t1}, t2={t2})")
        err1 = thermal_relaxation_error(
            t1, t2, time_1q, excited_state_population
        )
        model.add_all_qubit_quantum_error(err1, gates_1q)
        # A 2q gate relaxes both qubits independently; attach the 1q
        # channel twice is wrong (it would hit only the first qubit), so
        # the engines expand 1q channels onto each qubit of wider gates.
        err2 = thermal_relaxation_error(
            t1, t2, time_2q, excited_state_population
        )
        model.add_all_qubit_quantum_error(err2, gates_2q)
        return model
