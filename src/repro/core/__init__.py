"""The paper's primary contribution: QFT/AQFT-based integer arithmetic."""

from .adders import (
    add_step_gate_counts,
    add_step_on,
    constant_adder_circuit,
    cqfa_circuit,
    qfa_circuit,
    qfs_circuit,
)
from .extensions import (
    inner_product_circuit,
    inner_product_width,
    square_circuit,
    weighted_sum_circuit,
    weighted_sum_width,
)
from .modular import modular_constant_adder, phase_add_constant
from .multipliers import constant_multiplier_circuit, qfm_circuit
from .qft import (
    controlled_qft_circuit,
    effective_depth,
    iqft_circuit,
    qft_circuit,
    qft_gate_counts,
    qft_on,
    rotation_angle,
)
from .qint import (
    QInteger,
    QIntegerError,
    decode_twos_complement,
    encode_twos_complement,
    signed_range,
    unsigned_range,
)
from .stateprep import initialize_qinteger, mux_rotation_on, prepare_state

__all__ = [
    "QInteger",
    "QIntegerError",
    "encode_twos_complement",
    "decode_twos_complement",
    "signed_range",
    "unsigned_range",
    "qft_circuit",
    "iqft_circuit",
    "qft_on",
    "controlled_qft_circuit",
    "qft_gate_counts",
    "rotation_angle",
    "effective_depth",
    "qfa_circuit",
    "qfs_circuit",
    "cqfa_circuit",
    "add_step_on",
    "add_step_gate_counts",
    "constant_adder_circuit",
    "qfm_circuit",
    "constant_multiplier_circuit",
    "weighted_sum_circuit",
    "weighted_sum_width",
    "square_circuit",
    "inner_product_circuit",
    "inner_product_width",
    "modular_constant_adder",
    "phase_add_constant",
    "prepare_state",
    "initialize_qinteger",
    "mux_rotation_on",
]
