"""Quantum Fourier Multiplication (paper §3, Fig. 4).

The weighted-sum strategy of Ruiz-Perez: both multiplicands are
preserved, and a product register ``z`` of ``n + m`` qubits (initially 0)
accumulates ``x * y``::

    |x> |y> |z>  ->  |x> |y> |z + x*y mod 2**(n+m)>

Two equivalent constructions are provided:

``strategy="cqfa"`` (the paper's Fig. 4)
    Step ``i`` applies a controlled QFA — control ``x_i``, source ``y``,
    target the ``m+1``-qubit slice ``z[i : i+m+1]`` — adding
    ``x_i * 2**i * y``.  Each step carries its own cQFT / cQFT^-1 pair;
    the slice arithmetic is exact because the partial sum above bit ``i``
    always fits in ``m+1`` bits (see DESIGN.md).  This is the circuit
    whose transpiled gate counts reproduce the paper's Table I.

``strategy="fused"``
    One QFT over all of ``z``, every ``ccp(2*pi/2**(j-i-k+1), x_i, y_k,
    z_j)`` rotation, one inverse QFT — fewer gates, same unitary.  Used
    as a cross-check and as an ablation subject.

The AQFT ``depth`` applies to every (c)QFT stage, in the same convention
as :mod:`repro.core.qft`.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister
from .adders import qfa_circuit
from .qft import effective_depth, qft_on, rotation_angle

__all__ = ["qfm_circuit", "constant_multiplier_circuit"]


def qfm_circuit(
    n: int,
    m: Optional[int] = None,
    depth: Optional[int] = None,
    add_depth: Optional[int] = None,
    strategy: str = "cqfa",
    signed: bool = False,
) -> QuantumCircuit:
    """Build the QFM: ``|x>|y>|z> -> |x>|y>|z + x*y>``.

    Registers in qubit order: ``x`` (``n``), ``y`` (``m``, default
    ``n``), ``z`` (``n + m``).  ``depth`` is the AQFT approximation
    depth; ``add_depth`` optionally truncates the (c)add steps.

    ``signed=True`` builds the *signed* QFM the paper's §5 lists as
    future work: operands are two's complement, so bit ``n-1`` of ``x``
    carries weight ``-2**(n-1)`` (and likewise for ``y``), which simply
    negates the corresponding Fourier rotation angles.  The product
    lands in ``z`` as an ``(n+m)``-bit two's complement value.  Only the
    ``fused`` strategy supports signed mode (the slice-wise cQFA form
    relies on non-negative partial sums).
    """
    if m is None:
        m = n
    if n < 1 or m < 1:
        raise ValueError("register widths must be >= 1")
    if signed and strategy != "fused":
        raise ValueError("signed QFM requires strategy='fused'")
    x = QuantumRegister(n, "x")
    y = QuantumRegister(m, "y")
    z = QuantumRegister(n + m, "z")
    qc = QuantumCircuit(x, y, z)
    sign_tag = "s" if signed else ""
    qc.name = f"{sign_tag}qfm(n={n}, m={m}, d={effective_depth(m + 1, depth)})"

    if strategy == "cqfa":
        # One inner adder shared by all steps: |c>|y>|slice> with an
        # (m+1)-qubit modular target.
        inner = qfa_circuit(m, m + 1, depth, add_depth).controlled(1)
        for i in range(n):
            z_slice = [z[i + j] for j in range(m + 1)]
            qc.compose(inner, [x[i]] + list(y.indices) + z_slice)
        return qc

    if strategy == "fused":
        qft_on(qc, list(z), depth)
        nm = n + m
        for j in range(nm - 1, -1, -1):
            for i in range(n):
                for k in range(m):
                    l = j - i - k + 1
                    if l < 1:
                        continue
                    if add_depth is not None and l > add_depth:
                        continue
                    sign = 1.0
                    if signed:
                        # Two's complement: the top bit of each operand
                        # carries negative weight.
                        if i == n - 1:
                            sign = -sign
                        if k == m - 1:
                            sign = -sign
                    qc.ccp(sign * rotation_angle(l), x[i], y[k], z[j])
        qft_on(qc, list(z), depth, inverse=True)
        return qc

    raise ValueError(f"unknown strategy {strategy!r}")


def constant_multiplier_circuit(
    n: int,
    constant: int,
    depth: Optional[int] = None,
) -> QuantumCircuit:
    """Multiply by a classical constant: ``|x>|z> -> |x>|z + c*x>``.

    The paper §3 closing remark applied to multiplication: with one
    classical factor the doubly-controlled rotations collapse to singly
    controlled ones.  Registers: ``x`` (``n``), ``z`` (``2n``) so any
    ``c < 2**n`` product fits.
    """
    x = QuantumRegister(n, "x")
    z = QuantumRegister(2 * n, "z")
    qc = QuantumCircuit(x, z)
    qc.name = f"const_mul({constant}, n={n})"
    nm = 2 * n
    const = constant % (1 << nm)
    qft_on(qc, list(z), depth)
    for j in range(nm - 1, -1, -1):
        for i in range(n):
            # x_i contributes c * 2**i; phase on z_j is
            # 2*pi * c * 2**i / 2**(j+1), reduced mod 2*pi.
            angle = rotation_angle(j + 1) * ((const << i) % (1 << (j + 1)))
            if angle:
                qc.cp(angle, x[i], z[j])
    qft_on(qc, list(z), depth, inverse=True)
    return qc
