"""Arbitrary state preparation (the paper's initialization stage).

The paper initializes operand qintegers with the reverse decomposition of
Shende et al. (2006) as implemented in Qiskit, applied *noise-free*.
This module implements the same family of algorithms: the register is
disentangled one qubit at a time by multiplexed RZ/RY rotations computed
from the target amplitudes, and the preparation circuit is the inverse of
that disentangler.

Because the engines allow direct amplitude injection (observationally
identical to noise-free gate initialization — see DESIGN.md), the
experiment harness does not *run* these circuits; they exist as a public
API for gate-level workflows, and as the reference for initialization
gate counts.

The prepared state equals the target up to a global phase (the usual
``initialize`` semantics); :func:`prepare_state` is verified by fidelity
in the test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister
from .qint import QInteger

__all__ = ["prepare_state", "initialize_qinteger", "mux_rotation_on"]

_ATOL = 1e-12


def mux_rotation_on(
    circuit: QuantumCircuit,
    kind: str,
    angles: np.ndarray,
    controls: Sequence[int],
    target: int,
) -> QuantumCircuit:
    """Append a multiplexed rotation: ``Rot(angles[j])`` when the control
    qubits (LSB-first) read ``j``.

    Uses the standard CX-conjugation recursion: a k-control multiplexor
    becomes two (k-1)-control multiplexors of half-sum / half-difference
    angles around a CX, since ``X R(phi) X = R(-phi)`` for RY and RZ.
    """
    if kind not in ("ry", "rz"):
        raise ValueError(f"kind must be 'ry' or 'rz', got {kind!r}")
    angles = np.asarray(angles, dtype=float)
    if angles.shape != (1 << len(controls),):
        raise ValueError(
            f"expected {1 << len(controls)} angles, got {angles.shape}"
        )
    if np.all(np.abs(angles) < _ATOL):
        return circuit
    if not controls:
        getattr(circuit, kind)(float(angles[0]), target)
        return circuit
    msb = controls[-1]
    half = angles.shape[0] // 2
    lo, hi = angles[:half], angles[half:]
    mux_rotation_on(circuit, kind, (lo + hi) / 2.0, controls[:-1], target)
    circuit.cx(msb, target)
    mux_rotation_on(circuit, kind, (lo - hi) / 2.0, controls[:-1], target)
    circuit.cx(msb, target)
    return circuit


def prepare_state(target: np.ndarray, name: str = "init") -> QuantumCircuit:
    """A circuit mapping |0...0> to ``target`` (up to global phase).

    ``target`` must have length ``2**n`` and unit norm (normalised here
    with a tolerance check).
    """
    target = np.asarray(target, dtype=complex).reshape(-1)
    n = int(round(np.log2(target.shape[0])))
    if (1 << n) != target.shape[0]:
        raise ValueError(f"state length {target.shape[0]} is not a power of 2")
    norm = np.linalg.norm(target)
    if abs(norm - 1.0) > 1e-6:
        raise ValueError(f"state norm is {norm}, expected 1")
    target = target / norm

    reg = QuantumRegister(n, "q")
    disentangler = QuantumCircuit(reg)
    disentangler.name = f"{name}_dg"

    vec = target.copy()
    for q in range(n):
        # Current vector spans qubits q..n-1; disentangle its LSB
        # (qubit q) with multiplexed RZ then RY.
        pairs = vec.reshape(-1, 2)
        a0, a1 = pairs[:, 0], pairs[:, 1]
        mag0, mag1 = np.abs(a0), np.abs(a1)
        has0, has1 = mag0 > _ATOL, mag1 > _ATOL
        thetas = 2.0 * np.arctan2(mag1, mag0)
        # Phases of absent components default to the surviving one so the
        # RZ is skipped there and the reduced phase comes out right.
        raw0, raw1 = np.angle(a0), np.angle(a1)
        ang0 = np.where(has0, raw0, np.where(has1, raw1, 0.0))
        ang1 = np.where(has1, raw1, ang0)
        omegas = ang1 - ang0

        controls = [reg[i] for i in range(q + 1, n)]
        mux_rotation_on(disentangler, "rz", -omegas, controls, reg[q])
        mux_rotation_on(disentangler, "ry", -thetas, controls, reg[q])

        # After RZ(-omega) both components share phase (ang0+ang1)/2 and
        # RY(-theta) merges the magnitudes into the even slot.
        r = np.sqrt(mag0**2 + mag1**2)
        vec = r * np.exp(1j * (ang0 + ang1) / 2.0)

    circuit = disentangler.inverse(name)
    return circuit


def initialize_qinteger(qint: QInteger, name: str = "init") -> QuantumCircuit:
    """Preparation circuit for a :class:`QInteger`'s statevector."""
    return prepare_state(qint.statevector(), name=f"{name}[{qint!r}]")
