"""Quantum integers (qintegers).

A qinteger (paper §2) is a superposition of integer states on an n-qubit
register:  ``|y> = sum_i p_i |i>`` with ``sum p_i^2 = 1``.  A qinteger
with ``j`` distinct nonzero-amplitude integers is an *order-j* qinteger —
the superposition-order axis of the paper's figures (1:1, 1:2, 2:2
operations).

Integers are encoded in two's complement (paper §2); unsigned encoding is
also provided since the QFA/QFM circuits studied are the unsigned
variants (paper §5).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "QInteger",
    "QIntegerError",
    "encode_twos_complement",
    "decode_twos_complement",
    "signed_range",
    "unsigned_range",
]


class QIntegerError(ValueError):
    """Raised for invalid qinteger construction or encoding."""


def unsigned_range(num_qubits: int) -> Tuple[int, int]:
    """Inclusive (lo, hi) representable unsigned on ``num_qubits``."""
    return 0, (1 << num_qubits) - 1


def signed_range(num_qubits: int) -> Tuple[int, int]:
    """Inclusive (lo, hi) representable in two's complement."""
    half = 1 << (num_qubits - 1)
    return -half, half - 1


def encode_twos_complement(value: int, num_qubits: int) -> int:
    """Bit pattern of ``value`` in ``num_qubits``-bit two's complement."""
    lo, hi = signed_range(num_qubits)
    if not lo <= value <= hi:
        raise QIntegerError(
            f"{value} not representable in {num_qubits}-bit two's complement "
            f"[{lo}, {hi}]"
        )
    return value & ((1 << num_qubits) - 1)


def decode_twos_complement(pattern: int, num_qubits: int) -> int:
    """Signed integer encoded by ``pattern`` in two's complement."""
    if not 0 <= pattern < (1 << num_qubits):
        raise QIntegerError(f"pattern {pattern} out of range for {num_qubits} qubits")
    if pattern & (1 << (num_qubits - 1)):
        return pattern - (1 << num_qubits)
    return pattern


class QInteger:
    """A normalised superposition of integers on ``num_qubits`` qubits.

    Parameters
    ----------
    amplitudes:
        Mapping integer value -> complex amplitude.  Normalised on
        construction; zero amplitudes are dropped.
    num_qubits:
        Register width.
    signed:
        Two's-complement interpretation when True; unsigned otherwise.
    """

    def __init__(
        self,
        amplitudes: Mapping[int, complex],
        num_qubits: int,
        signed: bool = False,
    ) -> None:
        if num_qubits < 1:
            raise QIntegerError("num_qubits must be >= 1")
        self.num_qubits = int(num_qubits)
        self.signed = bool(signed)
        lo, hi = signed_range(num_qubits) if signed else unsigned_range(num_qubits)
        clean: Dict[int, complex] = {}
        for v, a in amplitudes.items():
            v = int(v)
            a = complex(a)
            if abs(a) == 0:
                continue
            if not lo <= v <= hi:
                raise QIntegerError(
                    f"value {v} out of {'signed' if signed else 'unsigned'} "
                    f"range [{lo}, {hi}] for {num_qubits} qubits"
                )
            clean[v] = clean.get(v, 0.0) + a
        clean = {v: a for v, a in clean.items() if abs(a) > 0}
        if not clean:
            raise QIntegerError("qinteger needs at least one nonzero amplitude")
        norm = math.sqrt(sum(abs(a) ** 2 for a in clean.values()))
        self.amplitudes: Dict[int, complex] = {
            v: a / norm for v, a in sorted(clean.items())
        }

    # ------------------------------------------------------------------
    @classmethod
    def basis(cls, value: int, num_qubits: int, signed: bool = False) -> "QInteger":
        """Order-1 qinteger |value>."""
        return cls({value: 1.0}, num_qubits, signed)

    @classmethod
    def uniform(
        cls, values: Iterable[int], num_qubits: int, signed: bool = False
    ) -> "QInteger":
        """Equal-amplitude superposition (the paper's setting: 'the
        probability amplitude is evenly distributed between each state')."""
        vals = list(values)
        if len(set(vals)) != len(vals):
            raise QIntegerError(f"duplicate values in {vals}")
        return cls({v: 1.0 for v in vals}, num_qubits, signed)

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The order of superposition: number of distinct integer states."""
        return len(self.amplitudes)

    @property
    def values(self) -> Tuple[int, ...]:
        """The superposed integer values, ascending."""
        return tuple(self.amplitudes)

    def encode(self, value: int) -> int:
        """Bit pattern (basis-state index) for one superposed value."""
        if self.signed:
            return encode_twos_complement(value, self.num_qubits)
        lo, hi = unsigned_range(self.num_qubits)
        if not lo <= value <= hi:
            raise QIntegerError(f"value {value} out of range [{lo}, {hi}]")
        return value

    def decode(self, pattern: int) -> int:
        """Integer value for a measured basis-state index."""
        if self.signed:
            return decode_twos_complement(pattern, self.num_qubits)
        if not 0 <= pattern < (1 << self.num_qubits):
            raise QIntegerError(f"pattern {pattern} out of range")
        return pattern

    def statevector(self) -> np.ndarray:
        """Dense amplitude vector of length ``2**num_qubits``."""
        vec = np.zeros(1 << self.num_qubits, dtype=complex)
        for v, a in self.amplitudes.items():
            vec[self.encode(v)] = a
        return vec

    def probabilities(self) -> Dict[int, float]:
        """Integer value -> probability."""
        return {v: abs(a) ** 2 for v, a in self.amplitudes.items()}

    # ------------------------------------------------------------------
    def map_values(self, fn, num_qubits: Optional[int] = None) -> "QInteger":
        """A new qinteger with each value mapped through ``fn``.

        Amplitudes of colliding images add coherently — the classical
        shadow of running an arithmetic circuit on this operand.
        """
        out: Dict[int, complex] = {}
        for v, a in self.amplitudes.items():
            w = int(fn(v))
            out[w] = out.get(w, 0.0) + a
        return QInteger(out, num_qubits or self.num_qubits, self.signed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QInteger):
            return NotImplemented
        if (
            self.num_qubits != other.num_qubits
            or self.signed != other.signed
            or self.values != other.values
        ):
            return False
        return all(
            abs(self.amplitudes[v] - other.amplitudes[v]) < 1e-9
            for v in self.values
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.signed, self.values))

    def __repr__(self) -> str:
        terms = " + ".join(
            f"({a.real:.3g}{a.imag:+.3g}j)|{v}>" if abs(a.imag) > 1e-12
            else f"{a.real:.3g}|{v}>"
            for v, a in self.amplitudes.items()
        )
        kind = "signed" if self.signed else "unsigned"
        return f"QInteger<{self.num_qubits}q {kind}>({terms})"
