"""The Quantum Fourier Transform and its approximation (paper §2).

The circuit follows the paper's Fig. 1 exactly: qubits are processed from
the most significant down; each gets a Hadamard followed by controlled
phase rotations ``R_l = CP(2*pi / 2**l)`` controlled by progressively
less significant qubits.  No terminal swap network is applied — the
paper's Fourier-basis labelling (``phi_q(y)`` on qubit ``q``) absorbs the
bit reversal, and it cancels between the QFT and inverse QFT inside
arithmetic circuits.  ``swaps=True`` appends the swap network for
comparison against the textbook DFT matrix.

Approximation depth
-------------------
``depth=d`` keeps rotations ``R_2 .. R_d`` on each qubit (``d-1``
controlled rotations per qubit, plus the Hadamard), exactly Eq. (4)'s
``[0.y]_{q,d}`` truncation; Fig. 1 removes ``R_{d+1} .. R_n`` (drawn in
red).  ``depth=None`` or ``depth >= n`` is the full QFT.  ``depth=1``
keeps only Hadamards.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister

__all__ = [
    "qft_circuit",
    "iqft_circuit",
    "controlled_qft_circuit",
    "qft_gate_counts",
    "rotation_angle",
    "effective_depth",
]


def rotation_angle(l: int) -> float:
    """The paper's R_l rotation angle, ``2*pi / 2**l``."""
    if l < 1:
        raise ValueError(f"rotation index must be >= 1, got {l}")
    return 2.0 * math.pi / (1 << l)


def effective_depth(num_qubits: int, depth: Optional[int]) -> int:
    """Clamp an AQFT depth to [1, num_qubits]; None means full."""
    if depth is None:
        return num_qubits
    depth = int(depth)
    if depth < 1:
        raise ValueError(f"AQFT depth must be >= 1, got {depth}")
    return min(depth, num_qubits)


def qft_on(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    depth: Optional[int] = None,
    inverse: bool = False,
    swaps: bool = False,
) -> QuantumCircuit:
    """Append an (A)QFT over ``qubits`` (LSB first) to ``circuit``.

    This is the composable form used by the arithmetic builders; see
    module docs for conventions.
    """
    n = len(qubits)
    d = effective_depth(n, depth)

    body = QuantumCircuit(max(qubits) + 1 if qubits else 1)
    for qpos in range(n - 1, -1, -1):  # MSB -> LSB
        body.h(qubits[qpos])
        # R_l controlled by the qubit l-1 places below.
        for l in range(2, min(d, qpos + 1) + 1):
            body.cp(rotation_angle(l), qubits[qpos - l + 1], qubits[qpos])
    if swaps:
        for i in range(n // 2):
            body.swap(qubits[i], qubits[n - 1 - i])
    if inverse:
        body = body.inverse()
    for instr in body:
        circuit.append(instr.gate, instr.qubits)
    return circuit


def qft_circuit(
    num_qubits: int,
    depth: Optional[int] = None,
    inverse: bool = False,
    swaps: bool = False,
) -> QuantumCircuit:
    """A standalone (A)QFT circuit on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register width ``n``.
    depth:
        AQFT approximation depth ``d`` (see module docs); ``None`` = full.
    inverse:
        Build the inverse transform.
    swaps:
        Append the bit-reversal swap network (textbook convention).
    """
    reg = QuantumRegister(num_qubits, "y")
    qc = QuantumCircuit(reg)
    d = effective_depth(num_qubits, depth)
    label = "qft" if d >= num_qubits else f"aqft[d={d}]"
    qc.name = f"{label}{'_dg' if inverse else ''}({num_qubits})"
    return qft_on(qc, list(reg), depth, inverse, swaps)


def iqft_circuit(
    num_qubits: int, depth: Optional[int] = None, swaps: bool = False
) -> QuantumCircuit:
    """The inverse (A)QFT."""
    return qft_circuit(num_qubits, depth, inverse=True, swaps=swaps)


def controlled_qft_circuit(
    num_qubits: int,
    depth: Optional[int] = None,
    inverse: bool = False,
) -> QuantumCircuit:
    """The cQFT of paper §3: every gate gains one control qubit.

    The control is qubit 0 of the returned circuit; the transformed
    register follows.  Uses cH and ccP (the paper's Eq. 7 gates).
    """
    return qft_circuit(num_qubits, depth, inverse=inverse).controlled(1)


def qft_gate_counts(num_qubits: int, depth: Optional[int] = None) -> dict:
    """Closed-form logical gate counts of the (A)QFT.

    Returns ``{"h": n, "cp": sum_q min(d, q+1) - 1}`` — the paper's
    ``(2n - d)(d - 1)/2`` rotation count at depth ``d`` (for ``d <= n``).
    """
    n = num_qubits
    d = effective_depth(n, depth)
    cp = sum(min(d, q + 1) - 1 for q in range(n))
    return {"h": n, "cp": cp}
