"""Modular arithmetic (paper §1/§5: the mod-N extension direction).

Addition mod ``2**n`` falls out of the plain QFA with ``m = n`` (the
register wraps naturally); this module adds the nontrivial case —
addition modulo an arbitrary ``N`` — via the Beauregard construction:
a Fourier-space constant adder plus one ancilla that detects and
corrects overflow:

    |b> |0>  ->  |(b + a) mod N> |0>        (0 <= a, b < N)

The ancilla is returned to |0> (uncomputed), so the circuit composes.
This is the building block Shor's algorithm stacks into modular
multiplication and exponentiation — the paper's original motivation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister
from .qft import qft_on

__all__ = [
    "phase_add_constant",
    "modular_constant_adder",
]

_TWO_PI = 2.0 * math.pi


def phase_add_constant(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    constant: int,
    control: Optional[int] = None,
) -> QuantumCircuit:
    """Fourier-space constant addition: phases ``2*pi*c / 2**(j+1)``.

    Assumes ``qubits`` currently hold a Fourier-transformed register
    (paper Fig. 2 with classical controls collapsed to plain phases, §3
    closing remark).  Negative constants subtract.  With ``control``
    set, every phase becomes a controlled phase.
    """
    m = len(qubits)
    const = int(constant) % (1 << m)
    for j in range(m):
        angle = (_TWO_PI * (const % (1 << (j + 1)))) / (1 << (j + 1))
        angle %= _TWO_PI
        if not angle:
            continue
        if control is None:
            circuit.p(angle, qubits[j])
        else:
            circuit.cp(angle, control, qubits[j])
    return circuit


def modular_constant_adder(
    n: int,
    a: int,
    N: int,
    depth: Optional[int] = None,
) -> QuantumCircuit:
    """Beauregard adder: ``|b>|0> -> |(b + a) mod N>|0>`` for ``b < N``.

    Registers: ``b`` of ``n + 1`` qubits (the top qubit is the overflow
    sentinel and must start 0, which holds whenever ``b < N <= 2**n -
    1``), and a one-qubit ancilla ``anc``.

    The construction: add ``a``, subtract ``N``; if that underflowed
    (top qubit set), the ancilla-controlled re-addition of ``N``
    restores the representative; the final subtract/re-add pair
    uncomputes the ancilla.  ``depth`` truncates every internal (A)QFT.
    """
    if not 1 <= N <= (1 << n) - 1:
        raise ValueError(f"N must be in [1, 2**n - 1], got {N}")
    if not 0 <= a < N:
        raise ValueError(f"a must satisfy 0 <= a < N, got {a}")
    b = QuantumRegister(n + 1, "b")
    anc = QuantumRegister(1, "anc")
    qc = QuantumCircuit(b, anc)
    qc.name = f"mod_add({a} mod {N}, n={n})"
    bq = list(b)
    msb = b[n]

    qft_on(qc, bq, depth)
    phase_add_constant(qc, bq, a)
    phase_add_constant(qc, bq, -N)
    # Overflow test: (b + a - N) < 0 sets the top qubit after iQFT.
    qft_on(qc, bq, depth, inverse=True)
    qc.cx(msb, anc[0])
    qft_on(qc, bq, depth)
    phase_add_constant(qc, bq, N, control=anc[0])
    # Uncompute: subtract a; the top qubit is now 1 exactly when the
    # correction did NOT fire, so invert it into the ancilla.
    phase_add_constant(qc, bq, -a)
    qft_on(qc, bq, depth, inverse=True)
    qc.x(msb)
    qc.cx(msb, anc[0])
    qc.x(msb)
    qft_on(qc, bq, depth)
    phase_add_constant(qc, bq, a)
    qft_on(qc, bq, depth, inverse=True)
    return qc
