"""Quantum Fourier Addition (QFA) and relatives (paper §3).

The Draper adder: transform the target register into the Fourier basis,
add the other operand's magnitude by controlled phase rotations, and
transform back::

    |x> |y>  ->  |x> |x + y>

``qfa_circuit`` builds the full pipeline; ``add_step_on`` exposes the
middle stage (Fig. 2) for fused constructions.  Both the QFT depth (the
paper's AQFT sweep axis) and the *add-step* depth (the approximation the
paper defers to future work — our E9 ablation) are parameters.

Register convention: ``x`` is the preserved addend (``n`` qubits, global
indices first), ``y`` the updated target (``m`` qubits).  Non-modular
addition (paper default) uses ``m = n + 1`` so no overflow occurs;
``m = n`` computes addition mod ``2**n`` — the variant whose transpiled
gate counts match the paper's Table I.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister
from .qft import effective_depth, qft_on, rotation_angle

__all__ = [
    "add_step_on",
    "qfa_circuit",
    "cqfa_circuit",
    "qfs_circuit",
    "constant_adder_circuit",
    "add_step_gate_counts",
]


def add_step_on(
    circuit: QuantumCircuit,
    x_qubits: Sequence[int],
    y_qubits: Sequence[int],
    add_depth: Optional[int] = None,
    subtract: bool = False,
) -> QuantumCircuit:
    """Append the Fourier-space addition step (paper Fig. 2).

    Target qubit ``j`` (LSB = 0) accumulates phase ``2*pi*x / 2**(j+1)``:
    a rotation ``R_{j-k+1}`` from each ``x_k`` with ``k <= j``.
    ``add_depth=d`` keeps only rotations ``R_l`` with ``l <= d``
    (the approximate add step); ``None`` keeps all.  ``subtract=True``
    negates every angle, turning the adder into a subtractor.
    """
    n = len(x_qubits)
    m = len(y_qubits)
    d = add_depth if add_depth is not None else m
    if d < 1:
        raise ValueError(f"add_depth must be >= 1, got {d}")
    sign = -1.0 if subtract else 1.0
    # Match Fig. 2's temporal order: most-significant target first,
    # within each target from the shallowest rotation down.
    for j in range(m - 1, -1, -1):
        for k in range(min(j, n - 1), -1, -1):
            l = j - k + 1
            if l > d:
                continue
            circuit.cp(sign * rotation_angle(l), x_qubits[k], y_qubits[j])
    return circuit


def add_step_gate_counts(
    n: int, m: int, add_depth: Optional[int] = None
) -> dict:
    """Closed-form logical CP count of the add step."""
    d = add_depth if add_depth is not None else m
    cp = 0
    for j in range(m):
        for k in range(min(j, n - 1), -1, -1):
            if j - k + 1 <= d:
                cp += 1
    return {"cp": cp}


def qfa_circuit(
    n: int,
    m: Optional[int] = None,
    depth: Optional[int] = None,
    add_depth: Optional[int] = None,
    subtract: bool = False,
) -> QuantumCircuit:
    """The full QFA: ``|x>|y> -> |x>|x + y mod 2**m>``.

    Parameters
    ----------
    n:
        Width of the preserved addend register ``x``.
    m:
        Width of the updated register ``y``; default ``n + 1``
        (non-modular).  ``m = n`` gives addition mod ``2**n``.
    depth:
        AQFT approximation depth for the QFT / inverse QFT stages.
    add_depth:
        Optional truncation of the addition step (E9 ablation).
    subtract:
        Build ``|x>|y> -> |x>|y - x mod 2**m>`` instead.
    """
    if m is None:
        m = n + 1
    if m < 1 or n < 1:
        raise ValueError("register widths must be >= 1")
    x = QuantumRegister(n, "x")
    y = QuantumRegister(m, "y")
    qc = QuantumCircuit(x, y)
    d = effective_depth(m, depth)
    qc.name = f"{'qfs' if subtract else 'qfa'}(n={n}, m={m}, d={d})"
    qft_on(qc, list(y), depth)
    add_step_on(qc, list(x), list(y), add_depth, subtract)
    qft_on(qc, list(y), depth, inverse=True)
    return qc


def qfs_circuit(
    n: int,
    m: Optional[int] = None,
    depth: Optional[int] = None,
    add_depth: Optional[int] = None,
) -> QuantumCircuit:
    """Quantum Fourier subtraction: ``|x>|y> -> |x>|y - x mod 2**m>``.

    In two's complement the modular wrap *is* the correct signed result
    whenever it is representable (paper §5's signed extension).
    """
    return qfa_circuit(n, m, depth, add_depth, subtract=True)


def cqfa_circuit(
    n: int,
    m: Optional[int] = None,
    depth: Optional[int] = None,
    add_depth: Optional[int] = None,
) -> QuantumCircuit:
    """The controlled QFA of paper §3 (Eq. 7 block diagram).

    Qubit 0 is the control ``c``; the ``x`` register follows, then ``y``.
    Every H becomes cH and every CP becomes ccP, exactly as the paper
    defines cQFT / cadd / cQFT^-1.
    """
    return qfa_circuit(n, m, depth, add_depth).controlled(1)


def constant_adder_circuit(
    n: int,
    constant: int,
    depth: Optional[int] = None,
    modular: bool = True,
) -> QuantumCircuit:
    """Add a *classical* constant: ``|y> -> |y + constant mod 2**m>``.

    The paper §3 closing remark: when one addend is a single classical
    integer, the controlled rotations collapse to plain one-qubit phase
    gates whose angles depend on the constant — a shorter, shallower
    circuit.  ``modular=False`` widens the register by one qubit.
    """
    m = n if modular else n + 1
    y = QuantumRegister(m, "y")
    qc = QuantumCircuit(y)
    qc.name = f"const_add({constant}, m={m})"
    qft_on(qc, list(y), depth)
    const = constant % (1 << m)
    for j in range(m):
        # Phase 2*pi * const / 2**(j+1) on target j; multiples of 2*pi
        # drop out exactly like rotations beyond the register.
        angle = 2.0 * math.pi * const / (1 << (j + 1))
        angle %= 2.0 * math.pi
        if angle:
            qc.p(angle, y[j])
    qft_on(qc, list(y), depth, inverse=True)
    return qc
