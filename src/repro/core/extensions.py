"""Extended QFT arithmetic: the paper's motivating workloads.

The introduction motivates quantum arithmetic with "weighted sum
optimization problems in data processing and machine learning, and
quantum algorithms requiring inner products"; §3's closing remark notes
the classical-operand specialisations.  This module builds those
composite circuits from the same Fourier-space machinery:

* :func:`weighted_sum_circuit` — ``acc += sum_i w_i * x_i`` for
  *classical* integer weights ``w_i`` and quantum operands ``x_i``
  (one QFT, singly-controlled phases, one inverse QFT).
* :func:`square_circuit` — ``z += x**2`` (the diagonal of QFM: qubit
  pairs (i, k) with i != k contribute doubly-controlled phases; i = k
  collapses to singly-controlled since ``x_i**2 = x_i``).
* :func:`inner_product_circuit` — ``acc += sum_p x_p . y_p`` over ``k``
  operand pairs, the tensor-extension direction of paper §5, fused under
  a single transform of the accumulator.

All are modular in the accumulator width (wrap mod ``2**width``), so
callers size the accumulator to avoid overflow; helpers below compute
the safe widths.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.registers import QuantumRegister
from .qft import qft_on, rotation_angle

__all__ = [
    "weighted_sum_circuit",
    "weighted_sum_width",
    "square_circuit",
    "inner_product_circuit",
    "inner_product_width",
]


def weighted_sum_width(weights: Sequence[int], n: int) -> int:
    """Accumulator width that can hold ``sum |w_i| * (2**n - 1)``."""
    total = sum(abs(int(w)) for w in weights) * ((1 << n) - 1)
    return max(1, total.bit_length())


def weighted_sum_circuit(
    weights: Sequence[int],
    n: int,
    acc_width: Optional[int] = None,
    depth: Optional[int] = None,
) -> QuantumCircuit:
    """``|x_0>...|x_{k-1}>|acc> -> ... |acc + sum_i w_i x_i>``.

    Each weight is classical, so every phase rotation needs only a
    single control (paper §3's remark) — the circuit stays CP-only
    regardless of how many terms the sum has.  Negative weights
    subtract, wrapping mod ``2**acc_width`` (two's complement semantics).
    """
    weights = [int(w) for w in weights]
    if not weights:
        raise ValueError("need at least one weight")
    if n < 1:
        raise ValueError("operand width must be >= 1")
    if acc_width is None:
        acc_width = weighted_sum_width(weights, n)
    regs = [QuantumRegister(n, f"x{i}") for i in range(len(weights))]
    acc = QuantumRegister(acc_width, "acc")
    qc = QuantumCircuit(*regs, acc)
    qc.name = f"weighted_sum({weights}, n={n})"
    mod = 1 << acc_width

    qft_on(qc, list(acc), depth)
    for j in range(acc_width - 1, -1, -1):
        base = rotation_angle(j + 1)  # 2*pi / 2**(j+1)
        for w, reg in zip(weights, regs):
            for b in range(n):
                # x_i bit b contributes w * 2**b to the sum.
                coeff = (w << b) % mod
                angle = base * (coeff % (1 << (j + 1)))
                if angle % (2.0 * math.pi):
                    qc.cp(angle, reg[b], acc[j])
    qft_on(qc, list(acc), depth, inverse=True)
    return qc


def square_circuit(n: int, depth: Optional[int] = None) -> QuantumCircuit:
    """``|x>|z> -> |x>|z + x**2 mod 2**(2n)>``.

    ``x**2 = sum_i x_i 4**i + sum_{i<k} x_i x_k 2**(i+k+1)``: the
    diagonal terms are singly controlled (``x_i**2 = x_i``), the cross
    terms doubly controlled.
    """
    if n < 1:
        raise ValueError("operand width must be >= 1")
    x = QuantumRegister(n, "x")
    z = QuantumRegister(2 * n, "z")
    qc = QuantumCircuit(x, z)
    qc.name = f"square(n={n})"
    width = 2 * n
    mod = 1 << width

    qft_on(qc, list(z), depth)
    for j in range(width - 1, -1, -1):
        base = rotation_angle(j + 1)
        for i in range(n):
            coeff = (1 << (2 * i)) % mod
            angle = base * (coeff % (1 << (j + 1)))
            if angle % (2.0 * math.pi):
                qc.cp(angle, x[i], z[j])
            for k in range(i + 1, n):
                coeff = (1 << (i + k + 1)) % mod
                angle = base * (coeff % (1 << (j + 1)))
                if angle % (2.0 * math.pi):
                    qc.ccp(angle, x[i], x[k], z[j])
    qft_on(qc, list(z), depth, inverse=True)
    return qc


def inner_product_width(n: int, m: int, k: int) -> int:
    """Accumulator width for ``sum of k`` products of n- and m-bit ints."""
    total = k * ((1 << n) - 1) * ((1 << m) - 1)
    return max(1, total.bit_length())


def inner_product_circuit(
    n: int,
    k: int,
    m: Optional[int] = None,
    acc_width: Optional[int] = None,
    depth: Optional[int] = None,
) -> QuantumCircuit:
    """``|x_0>|y_0>...|x_{k-1}>|y_{k-1}>|acc> -> ...|acc + sum x_p y_p>``.

    The vector inner product the paper's §5 "tensor extensions" point
    at: every pair contributes its fused-QFM phases under one shared
    accumulator transform, so the transform cost is paid once, not
    ``k`` times.
    """
    if m is None:
        m = n
    if n < 1 or m < 1 or k < 1:
        raise ValueError("n, m, k must all be >= 1")
    if acc_width is None:
        acc_width = inner_product_width(n, m, k)
    regs: List[QuantumRegister] = []
    for p in range(k):
        regs.append(QuantumRegister(n, f"x{p}"))
        regs.append(QuantumRegister(m, f"y{p}"))
    acc = QuantumRegister(acc_width, "acc")
    qc = QuantumCircuit(*regs, acc)
    qc.name = f"inner_product(n={n}, m={m}, k={k})"

    qft_on(qc, list(acc), depth)
    for j in range(acc_width - 1, -1, -1):
        for p in range(k):
            xr, yr = regs[2 * p], regs[2 * p + 1]
            for i in range(n):
                for b in range(m):
                    l = j - i - b + 1
                    if l < 1:
                        continue
                    qc.ccp(rotation_angle(l), xr[i], yr[b], acc[j])
    qft_on(qc, list(acc), depth, inverse=True)
    return qc
