"""The single registry of simulation methods.

Every surface that enumerates engines — :class:`SweepConfig`
validation, the service request schema, the ``repro-arith sweep
--method`` CLI flag, docs and examples — derives its list from
:data:`METHOD_SPECS` here, so adding an engine is a one-line change
and the surfaces can never drift apart (``tests/test_docs_consistency``
pins them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "MethodSpec",
    "METHOD_SPECS",
    "METHODS",
    "method_names",
    "method_help",
]


@dataclass(frozen=True)
class MethodSpec:
    """One simulation method as exposed to users."""

    name: str
    #: one-line summary used in CLI help and docs
    summary: str
    #: exact output distribution (vs stochastic sampling)
    exact: bool


#: Registration order is the presentation order everywhere.
METHOD_SPECS: Dict[str, MethodSpec] = {
    spec.name: spec
    for spec in (
        MethodSpec(
            "auto",
            "pick per circuit: statevector / density / trajectory",
            exact=False,
        ),
        MethodSpec(
            "statevector",
            "ideal pure-state evolution (noise-free only)",
            exact=True,
        ),
        MethodSpec(
            "density",
            "exact density-matrix channels (small registers)",
            exact=True,
        ),
        MethodSpec(
            "ptm",
            "pre-compiled Pauli-transfer-matrix exact lane",
            exact=True,
        ),
        MethodSpec(
            "trajectory",
            "batched stochastic Pauli unravelling",
            exact=False,
        ),
        MethodSpec(
            "perturbative",
            "deterministic low-order error expansion",
            exact=True,
        ),
        MethodSpec(
            "cut",
            "wire-cut fragments + tensor reconstruction (wide registers)",
            exact=False,
        ),
    )
}

#: Canonical method-name tuple, in registry order.
METHODS: Tuple[str, ...] = tuple(METHOD_SPECS)


def method_names() -> Tuple[str, ...]:
    """All registered method names, in registry order."""
    return METHODS


def method_help() -> str:
    """One formatted line per method, for CLI help text."""
    return "; ".join(
        f"'{spec.name}' = {spec.summary}" for spec in METHOD_SPECS.values()
    )
