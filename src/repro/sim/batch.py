"""Sweep-aware batched trajectory scheduling: fusion, dedup, adaptivity.

The paper's figures sweep error rates over a *fixed* compiled circuit
skeleton, and at the paper's sparse noise most sampled trajectories are
the clean one or repeat a one-error configuration.  This module turns
both observations into wall-clock:

* **Cross-task fusion** — trajectory rows from every task (sweep cell x
  instance) whose :attr:`~repro.sim.program.CompiledProgram.fusion_key`
  matches are packed into one ``(B, 2**n)`` state buffer, so each
  boundary gate kernel and each kernel-cached monomial gather is paid
  once per *chunk* instead of once per cell.
* **Error-configuration dedup** — each trajectory's full Pauli insertion
  pattern is sampled up front and canonicalised to a tuple of
  ``(site ordinal, label)`` events; only *distinct* configurations are
  simulated, and every trajectory samples its shots from its
  configuration's (shared) output distribution.  This generalises the
  clean/erred split of :class:`~repro.sim.trajectories.TrajectoryEngine`
  to all configurations and is **exact**: identical configurations
  produce bit-identical states, so merging them changes nothing but the
  amount of simulation work.
* **Adaptive shot allocation** — the paper's success criterion (no
  incorrect outcome may out-count any correct one) admits sequential
  early termination.  With the budget split over rounds, a task whose
  count margin ``D = min(correct) - max(incorrect)`` exceeds the
  remaining shot budget ``R`` in absolute value is *decided*: no
  completion of the remaining shots can flip the verdict, so the rule
  ``|D| > R`` stops exactly.  An optional Hoeffding-style rule
  (``delta > 0``) additionally stops once ``|D| >
  sqrt(0.5 * s * ln(1/delta))`` after ``s`` shots — a bounded-error
  shortcut whose flip probability per decided task is at most ``delta``.

Determinism contract (pinned by ``tests/test_batch_scheduler.py``): all
random draws happen per task in a fixed order — configuration sampling
first (clean-shot binomial, first-fire sites, fire matrix, label draws
per site), then outcome sampling (shot spreading, one multinomial per
trajectory row, readout flips) — and per-row state arithmetic never
depends on which other rows share a buffer (firing rows advance through
kernel-cached *partial* monomials split at their own fire positions
only).  Consequently ``fuse``/``dedup`` toggles and chunk geometry are
bit-invisible, and ``adaptive=False`` is literally a single round.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import sanitizer
from ..runtime.envutil import env_mb_bytes
from ..runtime.health import check_norms, norm_tolerance
from .backend import get_backend, resolve_complex_dtype
from .ops import BitCache, apply_pauli_string_rows, probabilities
from .program import CompiledProgram, _mono_apply_rows
from .result import Counts
from .statevector import zero_state

__all__ = [
    "TrajectoryTask",
    "TaskResult",
    "FusedTrajectoryScheduler",
    "run_request_tasks",
    "scheduler_stats",
    "reset_scheduler_stats",
]


# ---------------------------------------------------------------------------
# Process-wide stats (service /metrics gauges)
# ---------------------------------------------------------------------------

class _SchedulerStats:
    """Cumulative counters of every scheduler run in this process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._zero()

    def _zero(self) -> None:
        self.tasks = 0
        self.trajectories_sampled = 0
        self.rows_simulated = 0
        self.chunks = 0
        self.chunk_rows = 0
        self.decided_early = 0

    def reset(self) -> None:
        with self._lock:
            self._zero()

    def note(
        self,
        tasks: int,
        sampled: int,
        simulated: int,
        chunks: int,
        chunk_rows: int,
        decided: int,
    ) -> None:
        with self._lock:
            self.tasks += tasks
            self.trajectories_sampled += sampled
            self.rows_simulated += simulated
            self.chunks += chunks
            self.chunk_rows += chunk_rows
            self.decided_early += decided

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            simulated = max(1, self.rows_simulated)
            chunks = max(1, self.chunks)
            return {
                "tasks": self.tasks,
                "trajectories_sampled": self.trajectories_sampled,
                "rows_simulated": self.rows_simulated,
                "chunks": self.chunks,
                "decided_early": self.decided_early,
                "dedup_ratio": (
                    self.trajectories_sampled / simulated
                    if self.rows_simulated
                    else 1.0
                ),
                "batch_occupancy": (
                    self.chunk_rows / chunks if self.chunks else 0.0
                ),
            }


_STATS = _SchedulerStats()


def scheduler_stats() -> Dict[str, float]:
    """Process-wide scheduler counters (feeds the service gauges)."""
    return _STATS.snapshot()


def reset_scheduler_stats() -> None:
    _STATS.reset()


# ---------------------------------------------------------------------------
# Task / result records
# ---------------------------------------------------------------------------

class TrajectoryTask:
    """One unit of trajectory work: a (program, instance, budget) triple.

    ``rng`` is consumed exclusively by this task, in a fixed draw order,
    so a task's result is independent of which other tasks ride the same
    fused batch.  ``correct`` (a set of correct outcome integers)
    enables adaptive early termination; without it a task always spends
    its full budget.
    """

    __slots__ = (
        "key", "program", "shots", "trajectories", "rng",
        "initial_state", "correct",
    )

    def __init__(
        self,
        key,
        program: CompiledProgram,
        shots: int,
        trajectories: int,
        rng: np.random.Generator,
        initial_state: Optional[np.ndarray] = None,
        correct: Optional[frozenset] = None,
    ) -> None:
        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        if trajectories < 1:
            raise ValueError(
                f"trajectories must be >= 1, got {trajectories}"
            )
        if not program.pauli_only:
            raise ValueError(
                "batched scheduling requires a Pauli-only program "
                "(no Kraus channels, no mid-circuit reset)"
            )
        self.key = key
        self.program = program
        self.shots = int(shots)
        self.trajectories = int(trajectories)
        self.rng = rng
        self.initial_state = initial_state
        self.correct = frozenset(correct) if correct is not None else None


class TaskResult:
    """Counts plus the spend/efficiency record of one task."""

    __slots__ = (
        "counts", "shots_spent", "trajectories_sampled",
        "rows_simulated", "batch_occupancy", "decided_early",
        "rounds_run",
    )

    def __init__(
        self,
        counts: Counts,
        shots_spent: int,
        trajectories_sampled: int,
        rows_simulated: int,
        batch_occupancy: float,
        decided_early: bool,
        rounds_run: int,
    ) -> None:
        self.counts = counts
        self.shots_spent = shots_spent
        self.trajectories_sampled = trajectories_sampled
        self.rows_simulated = rows_simulated
        self.batch_occupancy = batch_occupancy
        self.decided_early = decided_early
        self.rounds_run = rounds_run

    @property
    def dedup_ratio(self) -> float:
        """Sampled trajectories per simulated erred row (>= 1.0).

        1.0 means no configuration repeated; higher values are the
        dedup savings factor on state-evolution work.
        """
        if self.rows_simulated <= 0:
            return 1.0
        return self.trajectories_sampled / self.rows_simulated


# ---------------------------------------------------------------------------
# Per-round task state
# ---------------------------------------------------------------------------

class _RoundPlan:
    """One task's sampled configurations for one round."""

    __slots__ = (
        "task", "state", "shots", "n_clean", "n_err", "B",
        "rows", "row_of_traj", "probs",
    )

    def __init__(self, task: TrajectoryTask, state: "_TaskState",
                 shots: int) -> None:
        self.task = task
        self.state = state
        self.shots = shots
        self.n_clean = 0
        self.n_err = 0
        self.B = 0
        #: distinct rows to simulate this round: ``None`` is the clean
        #: row, otherwise a tuple of (ordinal, qubits, label) events.
        self.rows: List[Optional[tuple]] = []
        #: trajectory index -> index into ``rows``.
        self.row_of_traj: List[int] = []
        self.probs: Optional[np.ndarray] = None


class _TaskState:
    """Accumulated outcomes and spend of one task across rounds."""

    __slots__ = (
        "task", "outcomes", "shots_spent", "trajectories_sampled",
        "rows_simulated", "chunk_rows", "chunks", "decided",
        "rounds_run",
    )

    def __init__(self, task: TrajectoryTask) -> None:
        self.task = task
        self.outcomes: List[np.ndarray] = []
        self.shots_spent = 0
        self.trajectories_sampled = 0
        self.rows_simulated = 0
        self.chunk_rows = 0
        self.chunks = 0
        self.decided = False
        self.rounds_run = 0

    def margin(self) -> Optional[int]:
        """``min(correct) - max(incorrect)`` over outcomes so far."""
        correct = self.task.correct
        if not correct or not self.outcomes:
            return None
        vals, cnts = np.unique(
            np.concatenate(self.outcomes), return_counts=True
        )
        table = dict(zip(vals.tolist(), cnts.tolist()))
        min_correct = min(table.get(o, 0) for o in correct)
        max_incorrect = 0
        for outcome, c in table.items():
            if outcome not in correct and c > max_incorrect:
                max_incorrect = c
        return min_correct - max_incorrect

    def result(self, num_qubits: int) -> TaskResult:
        outcomes = (
            np.concatenate(self.outcomes)
            if self.outcomes
            else np.empty(0, dtype=int)
        )
        counts = Counts.from_outcome_list(outcomes, num_qubits)
        return TaskResult(
            counts=counts,
            shots_spent=self.shots_spent,
            trajectories_sampled=self.trajectories_sampled,
            rows_simulated=self.rows_simulated,
            batch_occupancy=(
                self.chunk_rows / self.chunks if self.chunks else 0.0
            ),
            decided_early=self.decided,
            rounds_run=self.rounds_run,
        )


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class FusedTrajectoryScheduler:
    """Executes :class:`TrajectoryTask`\\ s with fusion/dedup/adaptivity.

    Parameters
    ----------
    fuse:
        Pack rows of fusion-compatible tasks into shared state buffers.
    dedup:
        Simulate each distinct error configuration once per task-round.
    adaptive / rounds / delta:
        Split each task's budget over ``rounds`` sequential rounds and
        stop a task once its verdict is decided (see module docs).
        ``adaptive=False`` forces a single round.  ``delta=0`` uses only
        the exact ``|D| > remaining`` rule; ``delta > 0`` adds the
        Hoeffding rule at confidence ``1 - delta``.
    max_batch_rows:
        Chunk-height ceiling; default derives from the ``REPRO_BATCH_MB``
        byte budget (256 MB) and the state width.
    """

    def __init__(
        self,
        fuse: bool = True,
        dedup: bool = True,
        adaptive: bool = False,
        rounds: int = 4,
        delta: float = 0.0,
        max_batch_rows: Optional[int] = None,
        dtype=None,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"delta must be in [0, 1), got {delta}")
        if max_batch_rows is not None and max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        self.fuse = bool(fuse)
        self.dedup = bool(dedup)
        self.adaptive = bool(adaptive)
        self.rounds = int(rounds) if adaptive else 1
        self.delta = float(delta)
        self.max_batch_rows = max_batch_rows
        self.dtype = resolve_complex_dtype(dtype)
        self._bits = BitCache()
        self._chunks_run = 0
        self._chunk_rows_run = 0

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TrajectoryTask]) -> Dict[object, TaskResult]:
        """Execute every task; returns ``{task.key: TaskResult}``.

        Tasks are processed in input order within every phase, so
        results are independent of grouping and chunk geometry.
        """
        states = [_TaskState(t) for t in tasks]
        self._chunks_run = 0
        self._chunk_rows_run = 0
        groups = self._group(states)
        for rnd in range(self.rounds):
            for group in groups:
                live = [s for s in group if not s.decided]
                if not live:
                    continue
                plans = [
                    self._sample_configs(s, self._round_shots(s.task, rnd))
                    for s in live
                ]
                plans = [p for p in plans if p.rows]
                self._simulate(plans)
                for p in plans:
                    self._sample_outcomes(p)
                for s in live:
                    s.rounds_run = rnd + 1
                    if self.adaptive and rnd + 1 < self.rounds:
                        self._check_decided(s, rnd)
        results = {s.task.key: s.result(s.task.program.num_qubits)
                   for s in states}
        _STATS.note(
            tasks=len(states),
            sampled=sum(s.trajectories_sampled for s in states),
            simulated=sum(s.rows_simulated for s in states),
            chunks=self._chunks_run,
            chunk_rows=self._chunk_rows_run,
            decided=sum(1 for s in states if s.decided),
        )
        return results

    # ------------------------------------------------------------------
    def _group(self, states: List[_TaskState]) -> List[List[_TaskState]]:
        if not self.fuse:
            return [[s] for s in states]
        groups: Dict[tuple, List[_TaskState]] = {}
        for s in states:
            groups.setdefault(s.task.program.fusion_key, []).append(s)
        return list(groups.values())

    def _round_shots(self, task: TrajectoryTask, rnd: int) -> int:
        base, extra = divmod(task.shots, self.rounds)
        return base + (1 if rnd < extra else 0)

    def _round_trajectories(self, task: TrajectoryTask, rnd: int) -> int:
        base, extra = divmod(task.trajectories, self.rounds)
        return max(1, base + (1 if rnd < extra else 0))

    # ------------------------------------------------------------------
    # Phase A: configuration sampling (all of a task's "which errors
    # fire where" randomness, drawn in one fixed order)
    # ------------------------------------------------------------------
    def _sample_configs(
        self, state: _TaskState, shots: int
    ) -> _RoundPlan:
        task = state.task
        rng = task.rng
        plan = _RoundPlan(task, state, shots)
        if shots <= 0:
            return plan
        sites = task.program.pauli_sites()
        es = np.array([op.e for _, op in sites])
        one_minus = 1.0 - es
        prefix_clean = np.ones(es.size)
        if es.size > 1:
            prefix_clean[1:] = np.cumprod(one_minus[:-1])
        p0 = float(np.prod(one_minus)) if es.size else 1.0

        n_clean = int(rng.binomial(shots, p0))
        n_err = shots - n_clean
        traj_cap = self._round_trajectories(task, state.rounds_run)
        B = min(traj_cap, n_err) if n_err else 0
        plan.n_clean, plan.n_err, plan.B = n_clean, n_err, B

        if n_clean:
            plan.rows.append(None)
        if not B:
            return plan

        # First fire per trajectory: P(first = s) ∝ prefix_clean[s]*e_s,
        # then independent fires at every later site — the same exact
        # law as TrajectoryEngine's forking split.
        pfirst = prefix_clean * es
        pfirst = pfirst / pfirst.sum()
        first = rng.choice(es.size, size=B, p=pfirst)
        u = rng.random((B, es.size))
        fires = u < es[None, :]
        site_idx = np.arange(es.size)[None, :]
        fires &= site_idx > first[:, None]
        fires[np.arange(B), first] = True

        # Label draws: one conditioned-choice batch per site, in site
        # order, covering that site's firing trajectories in row order.
        labels_of = [[] for _ in range(B)]
        for s, (_, op) in enumerate(sites):
            rows_f = np.flatnonzero(fires[:, s])
            if rows_f.size == 0:
                continue
            draws = rng.choice(len(op.labels), size=rows_f.size, p=op.cond)
            for b, idx in zip(rows_f, draws):
                labels_of[b].append((s, op.qubits, op.labels[idx]))
        configs = [tuple(ev) for ev in labels_of]

        if self.dedup:
            index: Dict[tuple, int] = {}
            for cfg in configs:
                row = index.get(cfg)
                if row is None:
                    index[cfg] = len(plan.rows)
                    plan.rows.append(cfg)
                    plan.row_of_traj.append(index[cfg])
                else:
                    plan.row_of_traj.append(row)
        else:
            for cfg in configs:
                plan.row_of_traj.append(len(plan.rows))
                plan.rows.append(cfg)
        state.trajectories_sampled += B
        state.rows_simulated += sum(
            1 for r in plan.rows if r is not None
        )
        return plan

    # ------------------------------------------------------------------
    # Phase B: batched simulation of the distinct rows
    # ------------------------------------------------------------------
    def _auto_rows(self, n: int) -> int:
        budget = env_mb_bytes("REPRO_BATCH_MB", 256)
        per_row = (1 << n) * np.dtype(self.dtype).itemsize
        # state + scratch + float64 probabilities live at once
        return max(1, budget // max(1, per_row * 3))

    def _simulate(self, plans: List[_RoundPlan]) -> None:
        if not plans:
            return
        n = plans[0].task.program.num_qubits
        cap = self.max_batch_rows or self._auto_rows(n)
        # Greedy in-order chunking; a plan's rows may span chunks (the
        # per-row arithmetic is chunk-invariant, so this is free).
        pending: List[Tuple[_RoundPlan, int]] = [
            (p, r) for p in plans for r in range(len(p.rows))
        ]
        for p in plans:
            p.probs = np.empty((len(p.rows), 1 << n))
        for lo in range(0, len(pending), cap):
            chunk = pending[lo:lo + cap]
            self._simulate_chunk(chunk, n)
            self._chunks_run += 1
            self._chunk_rows_run += len(chunk)
            # Each task records the *total* height of every chunk its
            # rows rode in — the occupancy it owes to fusion.
            touched = {id(pl.state): pl.state for pl, _ in chunk}
            for st in touched.values():
                st.chunks += 1
                st.chunk_rows += len(chunk)

    def _simulate_chunk(
        self, chunk: List[Tuple[_RoundPlan, int]], n: int
    ) -> None:
        """Evolve one chunk of rows with clean-prefix sharing.

        Every plan's rows in a chunk are contiguous (``pending`` lists
        plans in order), forming a *block*.  Each block carries one
        clean **reference** row — the plan's clean row when it rides
        this chunk, a synthetic extra row otherwise — and every erred
        row stays *dead* until the segment holding its first fire, at
        which point it copies the reference and walks piecewise from
        there.  Because every kernel involved (boundary gate, full/
        partial monomial, Pauli scatter) is row-local, the inherited
        prefix is bit-identical to the row having idled through those
        segments itself — the determinism contract is untouched while
        prefix gate work is paid once per block instead of once per
        row.  Sorting a block's rows by first-fire ordinal keeps the
        live rows a contiguous prefix, so boundary unitaries apply to
        views, never to rows that have not started.
        """
        dim = 1 << n
        # -- carve the chunk into per-plan blocks -----------------------
        blocks: List[Tuple[_RoundPlan, List[int]]] = []
        for plan, r in chunk:
            if blocks and blocks[-1][0] is plan:
                blocks[-1][1].append(r)
            else:
                blocks.append((plan, [r]))
        layouts = []  # (plan, start, ref_plan_row, sorted_event_rows)
        height = 0
        for plan, rows in blocks:
            empty = [r for r in rows if not plan.rows[r]]
            eventful = sorted(
                (r for r in rows if plan.rows[r]),
                key=lambda r: plan.rows[r][0][0],
            )
            ref = empty[0] if empty else None
            layouts.append((plan, height, ref, eventful))
            height += 1 + len(eventful)

        # Chunk allocation goes through the backend so device tiers
        # can swap the buffer without touching the walk below.
        buf = (
            get_backend().empty((height, dim))
            if np.dtype(self.dtype)
            == np.dtype(get_backend().complex_dtype)
            else np.empty((height, dim), dtype=self.dtype)
        )
        events: List[tuple] = [()] * height
        for plan, start, _ref, eventful in layouts:
            init = plan.task.initial_state
            if init is None:
                buf[start] = zero_state(n, 1, self.dtype)[0]
            else:
                vec = np.asarray(init, dtype=self.dtype).reshape(-1)
                if vec.shape[0] != dim:
                    raise ValueError("initial state has wrong dimension")
                buf[start] = vec
            for j, r in enumerate(eventful):
                events[start + 1 + j] = plan.rows[r]
        cursor = [0] * height
        live = [0] * len(layouts)  # activated erred rows per block
        row_scratch = np.empty(dim, dtype=self.dtype)
        stream = chunk[0][0].task.program.exec_stream()
        ordinal_base = 0
        for tag, item in stream:
            if tag == "op":
                # Boundary unitaries (dense gates) apply to each
                # block's live prefix; Pauli-only programs have no
                # other boundaries.  Dead rows inherit the op through
                # their later reference-row copy.
                for b, (_plan, start, _ref, _ev) in enumerate(layouts):
                    item.apply(buf[start:start + 1 + live[b]], n)
                continue
            seg = item
            n_sites = len(seg.sites)
            n_elems = len(seg.elems)
            hi = ordinal_base + n_sites
            # elem position of each ordinal inside this segment
            pos_of = {
                ordinal: elem_pos
                for elem_pos, _op, ordinal in seg.sites
            }
            idle: List[int] = []
            for b, (plan, start, _ref, eventful) in enumerate(layouts):
                k = live[b]
                # Rows whose first fire lands here copy the reference
                # (still at segment start) and join the walk.
                while k < len(eventful) and events[start + 1 + k][0][0] < hi:
                    buf[start + 1 + k] = buf[start]
                    k += 1
                live[b] = k
                idle.append(start)  # the reference row never fires
                for j in range(k):
                    i = start + 1 + j
                    evs = events[i]
                    c = cursor[i]
                    if c >= len(evs) or evs[c][0] >= hi:
                        idle.append(i)
                        continue
                    # Walk this row alone, splitting at its own fires
                    # only: the composed pieces depend on nothing but
                    # the row's configuration, which keeps fusion and
                    # dedup bit-invisible.
                    pos = 0
                    while c < len(evs) and evs[c][0] < hi:
                        ordinal, qubits, label = evs[c]
                        p = pos_of[ordinal]
                        if p > pos:
                            _mono_apply_rows(
                                buf, (i,),
                                seg.partial(n, pos, p, buf.dtype),
                                row_scratch,
                            )
                            pos = p
                        apply_pauli_string_rows(
                            buf, label, qubits, np.array([i]), n,
                            self._bits,
                        )
                        c += 1
                    cursor[i] = c
                    if pos < n_elems:
                        _mono_apply_rows(
                            buf, (i,),
                            seg.partial(n, pos, n_elems, buf.dtype),
                            row_scratch,
                        )
            if n_elems and idle:
                _mono_apply_rows(
                    buf, idle, seg.full(n, buf.dtype), row_scratch
                )
            ordinal_base = hi
        check_norms(
            buf, "batched trajectory scheduler",
            atol=norm_tolerance(self.dtype),
        )
        p = probabilities(buf)
        for plan, start, ref, eventful in layouts:
            if ref is not None:
                plan.probs[ref] = p[start]
            for j, r in enumerate(eventful):
                plan.probs[r] = p[start + 1 + j]
        if sanitizer.enabled():
            # Geometry-tagged (chunk height varies with batching mode
            # and REPRO_BATCH_MB), so this stage is excluded from
            # cross-path comparison; it localises a divergence to the
            # first differing evolution when the portable stages split.
            sanitizer.record(
                "chunk",
                {"height": height, "probs": p},
                key=repr(sorted({repr(pl.task.key) for pl, _ in chunk})),
            )

    # ------------------------------------------------------------------
    # Phase C: outcome sampling (per task, fixed draw order)
    # ------------------------------------------------------------------
    def _sample_outcomes(self, plan: _RoundPlan) -> None:
        task, state = plan.task, plan.state
        rng = task.rng
        outs: List[np.ndarray] = []
        probs = plan.probs
        clean_offset = 1 if plan.n_clean else 0
        if plan.n_clean:
            outs.append(self._multinomial(rng, probs[0], plan.n_clean))
        if plan.B:
            base, extra = divmod(plan.n_err, plan.B)
            per_row = np.full(plan.B, base, dtype=int)
            if extra:
                lucky = rng.choice(plan.B, size=extra, replace=False)
                per_row[lucky] += 1
            for b in range(plan.B):
                if per_row[b] == 0:
                    continue
                row = plan.row_of_traj[b]
                # With dedup off every trajectory owns a row, but rows
                # before ``clean_offset + b`` belong to earlier
                # trajectories either way — ``row_of_traj`` already
                # accounts for the clean row when present.
                outs.append(
                    self._multinomial(rng, probs[row], per_row[b])
                )
            plan.probs = None  # free the round's distributions
        outcomes = (
            np.concatenate(outs) if outs else np.empty(0, dtype=int)
        )
        outcomes = self._apply_readout(
            rng, outcomes, task.program.readout
        )
        if sanitizer.enabled():
            # One portable event per (task, round): the sampled outcome
            # stream plus the RNG state it left behind.  Identical
            # across batching="cell" and "group" by the determinism
            # contract — chunk geometry must never leak into draws.
            sanitizer.record(
                "task",
                {
                    "outcomes": outcomes,
                    "rng": rng.bit_generator.state,
                    "shots": plan.shots,
                },
                key=repr(task.key),
            )
        state.outcomes.append(outcomes)
        state.shots_spent += plan.shots

    @staticmethod
    def _multinomial(
        rng: np.random.Generator, pv: np.ndarray, shots: int
    ) -> np.ndarray:
        pv = pv.astype(np.float64, copy=True)
        pv /= pv.sum()
        cnt = rng.multinomial(shots, pv)
        nz = np.flatnonzero(cnt)
        return np.repeat(nz, cnt[nz])

    @staticmethod
    def _apply_readout(
        rng: np.random.Generator, outcomes: np.ndarray, readout
    ) -> np.ndarray:
        if not readout or outcomes.size == 0:
            return outcomes
        out = outcomes.copy()
        for q, p01, p10 in readout:
            bit = (out >> q) & 1
            flip_p = np.where(bit == 1, p10, p01)
            flips = rng.random(out.size) < flip_p
            out[flips] ^= 1 << q
        return out

    # ------------------------------------------------------------------
    # Adaptive termination
    # ------------------------------------------------------------------
    def _check_decided(self, state: _TaskState, rnd: int) -> None:
        margin = state.margin()
        if margin is None:
            return
        remaining = state.task.shots - state.shots_spent
        if remaining <= 0:
            return
        if abs(margin) > remaining:
            # Exact: no completion of the remaining shots can flip the
            # verdict (each shot moves min(correct) - max(incorrect) by
            # at most one in either direction).
            state.decided = True
            return
        if self.delta > 0:
            bound = math.sqrt(
                0.5 * state.shots_spent * math.log(1.0 / self.delta)
            )
            if abs(margin) > bound:
                state.decided = True


# ---------------------------------------------------------------------------
# Service entry: one pass over heterogeneous request-owned tasks
# ---------------------------------------------------------------------------

def run_request_tasks(
    tasks: Sequence[TrajectoryTask],
    *,
    fuse: bool = True,
    dedup: bool = True,
    max_batch_rows: Optional[int] = None,
    dtype=None,
) -> Dict[object, TaskResult]:
    """Execute a micro-batch of *request-owned* tasks in one scheduler pass.

    This is the group-of-groups entry used by the service fusion tier:
    ``tasks`` may mix fusion keys, shot budgets, trajectory counts and
    initial states — the scheduler regroups by exact
    :attr:`~repro.sim.program.CompiledProgram.fusion_key` internally, so
    callers may batch on any coarser proxy (e.g. circuit family) without
    risking cross-key contamination.  Tasks whose keys collide must be
    identical requests; later results overwrite earlier ones, which is
    then a no-op by the determinism contract.

    Adaptivity is deliberately **off**: per-request results must be
    bit-identical whether a request was fused with neighbours or ran
    alone, and a single non-adaptive round is the configuration whose
    draw order matches the per-request ``dedup`` path exactly.
    """
    if not tasks:
        return {}
    scheduler = FusedTrajectoryScheduler(
        fuse=fuse,
        dedup=dedup,
        adaptive=False,
        max_batch_rows=max_batch_rows,
        dtype=dtype,
    )
    return scheduler.run(tasks)
