"""Batched Monte-Carlo quantum-trajectory simulation.

The workhorse engine of the reproduction.  A depolarizing gate error is a
Pauli channel, so each shot of the noisy circuit can be simulated as the
ideal circuit with random Pauli insertions — an *exact* stochastic
unravelling of the CPTP map.  ``B`` trajectories are evolved together as
one ``(B, 2**n)`` array:

* every ideal gate is a single vectorized kernel over the whole batch
  (see :mod:`repro.sim.ops`), so Python overhead is amortised ``B``-fold;
* Pauli errors are sampled per trajectory and applied to the (usually
  small) row subsets that drew a non-identity outcome — X is an index
  permutation, Z a sign flip;
* general Kraus channels (thermal relaxation) use the standard
  quantum-trajectory branch rule: branch ``m`` is chosen with probability
  ``||K_m psi||^2`` per row.

Shots are distributed over trajectories; with ``trajectories >= shots``
every shot is an independent noise realisation (the exact setting).
Fewer trajectories re-use each noise realisation for several shots — a
controlled variance trade-off for speed, recorded in EXPERIMENTS.md.

Clean-shot splitting (``split_clean``, default on for Pauli-only
models) removes the worst of that trade-off.  The noisy ensemble
decomposes exactly as

    P = P0 * P_ideal + (1 - P0) * P_erred,

with ``P0 = prod(identity probs over all error sites)`` known in closed
form.  The engine samples ``Binomial(shots, P0)`` error-free shots
directly from the one ideal statevector, and devotes the whole
trajectory batch to the *erred* component via sequential conditioned
sampling (at each site, a still-clean trajectory fires with probability
``e_s / (1 - prod_{u>=s}(1 - e_u))``, which forces at least one error
by the last site).  In the paper's heavy-noise QFM regime — where
success hinges on a handful of error-free shots — this makes a
16-trajectory batch behave like an independent-shot simulation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..noise.channels import (
    PauliError,
    QuantumError,
    ResetError,
)
from ..noise.model import NoiseModel
from ..runtime.health import check_norms, norm_tolerance
from .backend import resolve_complex_dtype
from .ops import (
    BitCache,
    apply_gate_matrix,
    apply_instruction,
    apply_pauli_rows,
    probabilities,
)
from .program import CompiledProgram, as_program
from .result import Counts
from .statevector import zero_state

__all__ = ["TrajectoryEngine"]


class TrajectoryEngine:
    """Monte-Carlo Pauli/Kraus trajectory simulator.

    Parameters
    ----------
    trajectories:
        Number of independent noise realisations per :meth:`run` call.
    seed:
        Seed for the engine's own random generator (noise sampling and
        shot sampling).  Pass a :class:`numpy.random.Generator` via
        ``rng`` to share a stream.
    dtype:
        State dtype; ``complex64`` halves memory at ~1e-7 amplitude
        error, which is far below sampling noise at paper shot counts.
    """

    def __init__(
        self,
        trajectories: int = 128,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
        split_clean: bool = True,
        use_program: bool = True,
        dedup: bool = False,
    ) -> None:
        if trajectories < 1:
            raise ValueError("trajectories must be >= 1")
        self.trajectories = int(trajectories)
        # repro: allow[DET001] reason=public API convenience; result paths construct the runner with an explicit per-cell Generator
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.dtype = resolve_complex_dtype(dtype)
        self.split_clean = bool(split_clean)
        self.use_program = bool(use_program)
        self.dedup = bool(dedup)
        self._bits = BitCache()

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        noise_model: Optional[NoiseModel] = None,
        shots: int = 2048,
        initial_state: Optional[np.ndarray] = None,
    ) -> Counts:
        """Simulate and sample ``shots`` outcomes over all qubits.

        ``circuit`` may be a raw :class:`QuantumCircuit` or a
        :class:`~repro.sim.program.CompiledProgram`.  By default raw
        circuits are lowered through the compile cache first
        (``use_program=True``); pass ``use_program=False`` at
        construction to force the legacy gate-by-gate interpreter.
        """
        if isinstance(circuit, CompiledProgram):
            return self._run_program(circuit, shots, initial_state)
        if self.use_program:
            program = as_program(circuit, noise_model)
            return self._run_program(program, shots, initial_state)
        n = circuit.num_qubits
        noise = noise_model or NoiseModel.ideal()
        if self.split_clean and not noise.is_ideal:
            sites = self._pauli_site_table(circuit, noise)
            if sites is not None:
                return self._run_split(
                    circuit, noise, shots, initial_state, sites, n
                )
        B = 1 if noise.is_ideal else min(self.trajectories, shots)
        state = self._initial_batch(initial_state, B, n)

        for instr in circuit:
            name = instr.gate.name
            if name in ("barrier", "measure"):
                continue
            if name == "reset":
                state = self._reset_rows(
                    state, instr.qubits[0], np.arange(B), n, to_one=False
                )
                continue
            state = apply_instruction(state, instr, n)
            for err in noise.gate_errors(instr):
                state = self._apply_error(state, err, instr, n)

        check_norms(
            state, "trajectory engine", atol=norm_tolerance(self.dtype)
        )
        probs = probabilities(state)
        outcomes = self._sample(probs, shots)
        outcomes = self._apply_readout(outcomes, noise, n)
        return Counts.from_outcome_list(outcomes, n)

    # ------------------------------------------------------------------
    # Compiled-program execution
    # ------------------------------------------------------------------
    def _run_program(
        self,
        program: CompiledProgram,
        shots: int,
        initial_state: Optional[np.ndarray],
    ) -> Counts:
        """Execute a compiled program (split or unconditional path)."""
        n = program.num_qubits
        if (
            self.dedup
            and program.pauli_only
            and program.num_noise_sites > 0
        ):
            # Route through the batched scheduler: same exact ensemble
            # split, but identical error configurations are simulated
            # once (see :mod:`repro.sim.batch`).  Note the scheduler has
            # its own fixed RNG draw order, so dedup=True is a distinct
            # (equally exact) stream from the forking split below.
            from .batch import FusedTrajectoryScheduler, TrajectoryTask

            task = TrajectoryTask(
                key=0,
                program=program,
                shots=shots,
                trajectories=self.trajectories,
                rng=self.rng,
                initial_state=initial_state,
            )
            sched = FusedTrajectoryScheduler(
                fuse=False, dedup=True, dtype=self.dtype
            )
            return sched.run([task])[0].counts
        if (
            self.split_clean
            and program.pauli_only
            and program.num_noise_sites > 0
        ):
            return self._run_program_split(program, shots, initial_state, n)
        ideal = program.num_noise_sites == 0 and not program.readout
        B = 1 if ideal else min(self.trajectories, shots)
        state = self._initial_batch(initial_state, B, n)
        rows_all = np.arange(B)
        for op in program.ops:
            kind = op.kind
            if kind == "unitary":
                op.apply(state, n)
            elif kind == "noise":
                state = self._apply_error_on(state, op.error, op.qubits, n)
            elif kind == "reset":
                state = self._reset_rows(
                    state, op.qubit, rows_all, n, to_one=False
                )
        check_norms(
            state, "trajectory engine", atol=norm_tolerance(self.dtype)
        )
        outcomes = self._sample(probabilities(state), shots)
        outcomes = self._apply_readout_table(outcomes, program.readout)
        return Counts.from_outcome_list(outcomes, n)

    def _run_program_split(
        self,
        program: CompiledProgram,
        shots: int,
        initial_state: Optional[np.ndarray],
        n: int,
    ) -> Counts:
        """Forking ideal/erred split over a compiled program.

        Same exact ensemble decomposition as :meth:`_run_split`, but the
        erred batch is *grown* instead of evolved in full: each row's
        first-fire site is pre-sampled from its closed-form law
        ``P(first = s) ∝ prefix_clean[s] * e_s``, one shared clean row
        evolves through the program, and a row is forked off the clean
        row only when its first error fires (independent fires
        afterwards, as in the sequential scheme).  Gates before a row's
        first fire are therefore applied once instead of once per row —
        roughly halving gate work at paper noise levels.
        """
        sites = program.pauli_sites()
        es = np.array([op.e for _, op in sites])
        one_minus = 1.0 - es
        # prefix_clean[s] = prod_{u < s}(1 - e_u)
        prefix_clean = np.ones(es.size)
        if es.size > 1:
            prefix_clean[1:] = np.cumprod(one_minus[:-1])
        p0 = float(np.prod(one_minus)) if es.size else 1.0

        n_clean = int(self.rng.binomial(shots, p0)) if p0 > 0 else 0
        n_err = shots - n_clean
        B = min(self.trajectories, n_err) if n_err else 0

        # Row 0 is the evolving clean state (fork source); rows 1..B are
        # erred trajectories, dead until their first-fire site.
        buf = self._initial_batch(initial_state, B + 1, n)
        counts_per_site = np.zeros(es.size, dtype=int)
        if B:
            pfirst = prefix_clean * es
            pfirst = pfirst / pfirst.sum()
            first = self.rng.choice(es.size, size=B, p=pfirst)
            counts_per_site = np.bincount(first, minlength=es.size)

        if program.optimized:
            self._walk_split_segments(program, buf, counts_per_site, n)
        else:
            self._walk_split_ops(program, buf, counts_per_site, n)

        check_norms(
            buf, "trajectory engine (split)", atol=norm_tolerance(self.dtype)
        )
        pieces = []
        if n_clean:
            pieces.append(self._sample(probabilities(buf[:1]), n_clean))
        if n_err:
            pieces.append(self._sample(probabilities(buf[1:]), n_err))
        outcomes = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=int)
        )
        outcomes = self._apply_readout_table(outcomes, program.readout)
        return Counts.from_outcome_list(outcomes, n)

    def _walk_split_ops(
        self,
        program: CompiledProgram,
        buf: np.ndarray,
        counts_per_site: np.ndarray,
        n: int,
    ) -> int:
        """Op-by-op forking walk (reference path, bitwise-stable)."""
        k = 0  # forked (live erred) rows so far
        s = 0  # pauli-site counter
        for op in program.ops:
            kind = op.kind
            if kind == "unitary":
                op.apply(buf[: 1 + k], n)
                continue
            if kind == "reset":
                self._reset_rows(
                    buf, op.qubit, np.arange(1 + k), n, to_one=False
                )
                continue
            if kind != "noise" or not op.e:
                continue
            # Previously forked rows fire independently.
            if k:
                fire = self.rng.random(k) < op.e
                rows = np.flatnonzero(fire) + 1
                if rows.size:
                    self._scatter_paulis(buf, op, rows, n)
            # Fork the rows whose first fire is this site.
            m = counts_per_site[s]
            if m:
                new_rows = np.arange(1 + k, 1 + k + m)
                buf[new_rows] = buf[0]
                self._scatter_paulis(buf, op, new_rows, n)
                k += m
            s += 1
        return k

    def _walk_split_segments(
        self,
        program: CompiledProgram,
        buf: np.ndarray,
        counts_per_site: np.ndarray,
        n: int,
    ) -> int:
        """Segment-fused forking walk over optimized programs.

        Same fork/fire law as :meth:`_walk_split_ops`, but organised
        around *events*: per segment every site's fire/fork draws happen
        up front (one uniform batch per site, in site order, so the
        stream consumption is deterministic), which pins down the small
        set of **active** rows — rows that fire here, rows forked here,
        and row 0 while forking continues.  Only active rows are walked
        chunk-by-chunk between their event sites (cheap per-row
        gathers); every other live row crosses the whole segment in one
        kernel-cached gather-and-multiply shared across runs and
        instances.  At paper noise levels most rows cross most segments
        untouched, so gate work collapses to roughly one batched gather
        per segment.
        """
        from .program import _compose_elems, _mono_apply, _mono_apply_rows

        scratch = np.empty_like(buf)
        row_scratch = np.empty(buf.shape[1], dtype=buf.dtype)
        k = 0
        for tag, item in program.exec_stream():
            if tag == "op":
                op = item
                if op.kind == "unitary":
                    op.apply(buf[: 1 + k], n)
                elif op.kind == "reset":
                    self._reset_rows(
                        buf, op.qubit, np.arange(1 + k), n, to_one=False
                    )
                elif op.kind == "noise":
                    sl = buf[: 1 + k]
                    sub = self._apply_error_on(sl, op.error, op.qubits, n)
                    if sub is not sl:
                        sl[...] = sub
                continue
            seg = item
            live = 1 + k
            # -- pre-draw every event of this segment --------------------
            # ``kv`` tracks the virtual row count: fires at a site may
            # hit rows forked at earlier sites of the same segment.
            events = []
            kv = k
            for elem_pos, noise_op, ordinal in seg.sites:
                fire_rows = None
                if kv:
                    fire = self.rng.random(kv) < noise_op.e
                    rows = np.flatnonzero(fire) + 1
                    if rows.size:
                        fire_rows = rows
                m = counts_per_site[ordinal]
                if fire_rows is not None or m:
                    events.append((elem_pos, noise_op, fire_rows, m))
                kv += m
            if not events:
                if seg.elems:
                    _mono_apply(buf[:live], seg.full(n, buf.dtype), scratch[:live])
                continue
            # -- active rows: fire rows + fork source/targets ------------
            active = set()
            if any(m for _, _, _, m in events):
                active.add(0)
            for _, _, rows, _ in events:
                if rows is not None:
                    active.update(int(r) for r in rows)
            walking = sorted(r for r in active if r < live)
            pos = 0
            for elem_pos, noise_op, fire_rows, m in events:
                if elem_pos > pos:
                    _mono_apply_rows(
                        buf,
                        walking,
                        _compose_elems(
                            (None, None), seg.elems[pos:elem_pos], n,
                            buf.dtype,
                        ),
                        row_scratch,
                    )
                    pos = elem_pos
                if fire_rows is not None:
                    self._scatter_paulis(buf, noise_op, fire_rows, n)
                if m:
                    new_rows = np.arange(1 + k, 1 + k + m)
                    buf[new_rows] = buf[0]
                    self._scatter_paulis(buf, noise_op, new_rows, n)
                    k += m
                    walking.extend(int(r) for r in new_rows)
            # Tail for the walkers, then the untouched rows cross the
            # whole segment via the shared cached kernel.
            if pos < len(seg.elems) and walking:
                _mono_apply_rows(
                    buf,
                    walking,
                    seg.full(n, buf.dtype)
                    if pos == 0
                    else _compose_elems(
                        (None, None), seg.elems[pos:], n, buf.dtype
                    ),
                    row_scratch,
                )
            if seg.elems:
                idle = [r for r in range(live) if r not in active]
                if idle:
                    _mono_apply_rows(
                        buf, idle, seg.full(n, buf.dtype), row_scratch
                    )
        return k

    def _scatter_paulis(
        self, state: np.ndarray, op, rows: np.ndarray, n: int
    ) -> None:
        """Draw from a site's conditioned table and apply per label."""
        draws = self.rng.choice(len(op.labels), size=rows.size, p=op.cond)
        for idx in np.unique(draws):
            label = op.labels[idx]
            sub = rows[draws == idx]
            for pos, ch in enumerate(label):
                if ch != "I":
                    apply_pauli_rows(
                        state, ch, op.qubits[pos], sub, n, self._bits
                    )

    def _apply_readout_table(
        self,
        outcomes: np.ndarray,
        readout: Sequence,
    ) -> np.ndarray:
        """Flip measured bits per the program's resolved readout table."""
        if not readout or outcomes.size == 0:
            return outcomes
        out = outcomes.copy()
        for q, p01, p10 in readout:
            bit = (out >> q) & 1
            flip_p = np.where(bit == 1, p10, p01)
            flips = self.rng.random(out.size) < flip_p
            out[flips] ^= 1 << q
        return out

    # ------------------------------------------------------------------
    # Clean-shot splitting
    # ------------------------------------------------------------------
    def _initial_batch(
        self, initial_state: Optional[np.ndarray], B: int, n: int
    ) -> np.ndarray:
        if initial_state is None:
            return zero_state(n, B, self.dtype)
        vec = np.asarray(initial_state, dtype=self.dtype).reshape(1, -1)
        if vec.shape[1] != (1 << n):
            raise ValueError("initial state has wrong dimension")
        return np.repeat(vec, B, axis=0)

    def _pauli_site_table(self, circuit: QuantumCircuit, noise: NoiseModel):
        """Per-instruction Pauli error sites, or None if non-Pauli noise.

        Each site is ``(qubits, labels, cond_probs, e)`` where ``labels``
        are the channel's non-identity Pauli strings, ``cond_probs``
        their probabilities conditioned on a non-identity draw, and
        ``e`` the site's total non-identity probability.  Sites with
        ``e == 0`` are dropped.
        """
        table = []
        for instr in circuit:
            entries = []
            for err in noise.gate_errors(instr):
                if not isinstance(err, PauliError):
                    return None
                if err.num_qubits == 1 and len(instr.qubits) > 1:
                    applications = [(q,) for q in instr.qubits]
                elif err.num_qubits == len(instr.qubits):
                    applications = [instr.qubits]
                else:
                    raise ValueError(
                        f"error arity {err.num_qubits} does not match "
                        f"gate {instr.gate.name!r}"
                    )
                nontrivial = [
                    (p, pr)
                    for p, pr in zip(err.paulis, err.probs)
                    if set(p) != {"I"} and pr > 0
                ]
                e = float(sum(pr for _, pr in nontrivial))
                if e <= 0:
                    continue
                labels = [p for p, _ in nontrivial]
                cond = np.array([pr for _, pr in nontrivial]) / e
                for qubits in applications:
                    entries.append((tuple(qubits), labels, cond, e))
            table.append(entries)
        return table

    def _run_split(
        self,
        circuit: QuantumCircuit,
        noise: NoiseModel,
        shots: int,
        initial_state: Optional[np.ndarray],
        site_table,
        n: int,
    ) -> Counts:
        """Exact ideal/erred ensemble split (see module docs)."""
        es = np.array(
            [site[3] for entries in site_table for site in entries]
        )
        # suffix_clean[s] = prod_{u >= s} (1 - e_u); R[s] = P(>=1 fire
        # among sites s..end).
        one_minus = 1.0 - es
        suffix_clean = np.ones(es.size + 1)
        suffix_clean[:-1] = np.cumprod(one_minus[::-1])[::-1]
        p0 = float(suffix_clean[0]) if es.size else 1.0
        r_tail = 1.0 - suffix_clean[:-1]

        n_clean = int(self.rng.binomial(shots, p0)) if p0 > 0 else 0
        n_err = shots - n_clean
        pieces = []

        if n_clean:
            ideal = self._initial_batch(initial_state, 1, n)
            for instr in circuit:
                if instr.gate.name in ("barrier", "measure"):
                    continue
                if instr.gate.name == "reset":
                    ideal = self._reset_rows(
                        ideal, instr.qubits[0], np.arange(1), n, to_one=False
                    )
                    continue
                ideal = apply_instruction(ideal, instr, n)
            check_norms(
                ideal,
                "trajectory engine (clean split)",
                atol=norm_tolerance(self.dtype),
            )
            pieces.append(self._sample(probabilities(ideal), n_clean))

        if n_err:
            B = min(self.trajectories, n_err)
            state = self._initial_batch(initial_state, B, n)
            has_error = np.zeros(B, dtype=bool)
            s = 0
            for instr, entries in zip(circuit, site_table):
                name = instr.gate.name
                if name in ("barrier", "measure"):
                    continue
                if name == "reset":
                    state = self._reset_rows(
                        state, instr.qubits[0], np.arange(B), n, to_one=False
                    )
                    continue
                state = apply_instruction(state, instr, n)
                for qubits, labels, cond, e in entries:
                    r = r_tail[s]
                    # Conditional fire probability for still-clean rows;
                    # the final site forces a fire (p -> 1).
                    p_clean = min(1.0, e / r) if r > 0 else 1.0
                    fire_p = np.where(has_error, e, p_clean)
                    fire = self.rng.random(B) < fire_p
                    rows = np.flatnonzero(fire)
                    if rows.size:
                        draws = self.rng.choice(
                            len(labels), size=rows.size, p=cond
                        )
                        for idx in np.unique(draws):
                            label = labels[idx]
                            sub = rows[draws == idx]
                            for pos, ch in enumerate(label):
                                if ch != "I":
                                    apply_pauli_rows(
                                        state, ch, qubits[pos], sub, n,
                                        self._bits,
                                    )
                        has_error[rows] = True
                    s += 1
            check_norms(
                state,
                "trajectory engine (erred split)",
                atol=norm_tolerance(self.dtype),
            )
            pieces.append(self._sample(probabilities(state), n_err))

        outcomes = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=int)
        )
        outcomes = self._apply_readout(outcomes, noise, n)
        return Counts.from_outcome_list(outcomes, n)

    # ------------------------------------------------------------------
    # Error application
    # ------------------------------------------------------------------
    def _apply_error(
        self,
        state: np.ndarray,
        err: QuantumError,
        instr: Instruction,
        n: int,
    ) -> np.ndarray:
        if err.num_qubits == 1 and len(instr.qubits) > 1:
            for q in instr.qubits:
                state = self._apply_error_on(state, err, (q,), n)
            return state
        if err.num_qubits != len(instr.qubits):
            raise ValueError(
                f"error arity {err.num_qubits} does not match gate "
                f"{instr.gate.name!r} on {len(instr.qubits)} qubits"
            )
        return self._apply_error_on(state, err, instr.qubits, n)

    def _apply_error_on(
        self,
        state: np.ndarray,
        err: QuantumError,
        qubits: Sequence[int],
        n: int,
    ) -> np.ndarray:
        B = state.shape[0]
        if isinstance(err, PauliError):
            draws = err.sample(self.rng, B)
            for idx in np.unique(draws):
                label = err.paulis[idx]
                if set(label) == {"I"}:
                    continue
                rows = np.flatnonzero(draws == idx)
                for pos, ch in enumerate(label):
                    if ch != "I":
                        apply_pauli_rows(
                            state, ch, qubits[pos], rows, n, self._bits
                        )
            return state
        if isinstance(err, ResetError):
            return self._apply_reset_error(state, err, qubits[0], n)
        # General Kraus channel: branch with Born weights per row.
        return self._apply_kraus(state, err.kraus_operators(), qubits, n)

    def _apply_kraus(
        self,
        state: np.ndarray,
        kraus: List[np.ndarray],
        qubits: Sequence[int],
        n: int,
    ) -> np.ndarray:
        B = state.shape[0]
        m = len(kraus)
        # Candidate states and their norms for every branch.
        cands = np.empty((m,) + state.shape, dtype=state.dtype)
        norms = np.empty((m, B), dtype=float)
        for i, K in enumerate(kraus):
            cands[i] = apply_gate_matrix(state.copy(), K, qubits, n)
            norms[i] = np.einsum(
                "bi,bi->b", cands[i], cands[i].conj()
            ).real
        total = norms.sum(axis=0)
        # Trace preservation => total ~ ||psi||^2 (=1); normalise anyway.
        pick_p = norms / total
        u = self.rng.random(B)
        cum = np.cumsum(pick_p, axis=0)
        choice = (u[None, :] > cum).sum(axis=0)
        out = cands[choice, np.arange(B)]
        # Renormalise each row after the non-unitary branch.
        nrm = np.sqrt(
            np.einsum("bi,bi->b", out, out.conj()).real
        )
        nrm[nrm == 0] = 1.0
        out /= nrm[:, None]
        return np.ascontiguousarray(out)

    def _apply_reset_error(
        self, state: np.ndarray, err: ResetError, q: int, n: int
    ) -> np.ndarray:
        B = state.shape[0]
        u = self.rng.random(B)
        rows0 = np.flatnonzero(u < err.p0)
        rows1 = np.flatnonzero((u >= err.p0) & (u < err.p0 + err.p1))
        if rows0.size:
            state = self._reset_rows(state, q, rows0, n, to_one=False)
        if rows1.size:
            state = self._reset_rows(state, q, rows1, n, to_one=True)
        return state

    def _reset_rows(
        self,
        state: np.ndarray,
        q: int,
        rows: np.ndarray,
        n: int,
        to_one: bool,
    ) -> np.ndarray:
        """Measure qubit ``q`` on the given rows, then set it to 0 (or 1).

        This is the trajectory form of the reset channel: the qubit is
        projectively measured (Born rule per row) and re-prepared.
        """
        mask1 = self._bits.mask_bit(n, q)
        sub = state[rows]
        # p1 per row: probability qubit q is 1.
        p1 = (np.abs(sub[:, mask1]) ** 2).sum(axis=1)
        tot = (np.abs(sub) ** 2).sum(axis=1)
        p1 = np.where(tot > 0, p1 / tot, 0.0)
        got1 = self.rng.random(rows.size) < p1
        perm = self._bits.perm_flip(n, q)
        new = np.zeros_like(sub)
        # Outcome-0 rows: keep the qubit-0 component.
        keep0 = ~got1
        new[np.ix_(keep0, ~mask1)] = sub[np.ix_(keep0, ~mask1)]
        # Outcome-1 rows: keep the qubit-1 component, moved to qubit 0.
        new[np.ix_(got1, ~mask1)] = sub[np.ix_(got1, mask1)]
        if to_one:
            # Re-prepare in |1> instead of |0>: flip the qubit back.
            new = new[:, perm]
        nrm = np.sqrt((np.abs(new) ** 2).sum(axis=1))
        nrm[nrm == 0] = 1.0
        new /= nrm[:, None]
        state[rows] = new
        return state

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self, probs: np.ndarray, shots: int) -> np.ndarray:
        """One outcome integer per shot, spreading shots over rows."""
        B = probs.shape[0]
        base, extra = divmod(shots, B)
        per_row = np.full(B, base, dtype=int)
        if extra:
            lucky = self.rng.choice(B, size=extra, replace=False)
            per_row[lucky] += 1
        outs: List[np.ndarray] = []
        dim = probs.shape[1]
        for b in range(B):
            if per_row[b] == 0:
                continue
            # float32 states need an exact-sum float64 pvals vector.
            pv = probs[b].astype(np.float64, copy=True)
            pv /= pv.sum()
            cnt = self.rng.multinomial(per_row[b], pv)
            nz = np.flatnonzero(cnt)
            outs.append(np.repeat(nz, cnt[nz]))
        return np.concatenate(outs) if outs else np.empty(0, dtype=int)

    def _apply_readout(
        self, outcomes: np.ndarray, noise: NoiseModel, n: int
    ) -> np.ndarray:
        """Flip measured bits per the model's readout errors."""
        if noise.is_ideal or outcomes.size == 0:
            return outcomes
        out = outcomes.copy()
        for q in range(n):
            ro = noise.readout_error(q)
            if ro is None:
                continue
            bit = (out >> q) & 1
            flip_p = np.where(bit == 1, ro.p10, ro.p01)
            flips = self.rng.random(out.size) < flip_p
            out[flips] ^= 1 << q
        return out
