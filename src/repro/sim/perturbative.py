"""Perturbative (sparse-error) noisy simulation.

When the expected number of gate errors per shot is small — the regime of
the paper's QFA sweeps, where ~300-500 gates at 0.2-0.5% error yield
roughly one error per shot — the noisy output distribution is dominated
by configurations with few error insertions.  This engine computes the
*exact* mixture over all configurations with at most ``max_order``
non-identity Pauli insertions, renormalised to account for truncated
weight:

    P(outcome) ~ sum_{configs c, |c| <= K} w(c) * P_c(outcome) / sum w(c)

Only Pauli errors are supported (the paper's depolarizing models are
Pauli channels).  The implementation makes a single forward sweep
maintaining the state after each prefix; for every error location the
3 (or 15) Pauli variants are evolved through the remaining suffix as one
batch, so order-1 costs O(G^2 / 2) batched gate applications.

This engine is deterministic (no Monte-Carlo variance) and serves as a
cross-check of the trajectory engine in the sparse regime (benchmark
E10), and as a fast exact path for order-1-dominated sweeps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..noise.channels import PauliError
from ..noise.model import NoiseModel
from ..runtime.health import NumericalHealthError, check_finite
from .backend import resolve_complex_dtype
from .ops import apply_instruction, apply_pauli_rows, probabilities, BitCache
from .program import CompiledProgram
from .result import Distribution
from .statevector import zero_state

__all__ = ["PerturbativeEngine"]


def _healthy_distribution(
    accum: np.ndarray, total_weight: float, n: int
) -> Distribution:
    """Validate the truncated mixture before renormalising it."""
    check_finite(accum, "perturbative engine")
    if not math.isfinite(total_weight) or total_weight <= 0:
        raise NumericalHealthError(
            f"perturbative engine: degenerate truncation weight "
            f"{total_weight!r}"
        )
    return Distribution(accum / total_weight, n)


class _ErrorSite:
    """A Pauli channel instance at one circuit position."""

    __slots__ = ("instr_index", "qubits", "paulis", "probs", "p_identity")

    def __init__(
        self,
        instr_index: int,
        qubits: Tuple[int, ...],
        err: PauliError,
    ) -> None:
        self.instr_index = instr_index
        self.qubits = qubits
        nontrivial = [
            (p, pr)
            for p, pr in zip(err.paulis, err.probs)
            if set(p) != {"I"} and pr > 0
        ]
        self.paulis = [p for p, _ in nontrivial]
        self.probs = np.array([pr for _, pr in nontrivial], dtype=float)
        self.p_identity = err.identity_prob


class PerturbativeEngine:
    """Truncated error-configuration expansion (order 0 and 1).

    Parameters
    ----------
    max_order:
        Highest number of simultaneous error insertions kept; currently
        0 or 1.  (Order >= 2 costs O(G^2) full circuit evaluations and is
        intentionally not implemented — use the trajectory engine there.)
    """

    def __init__(self, max_order: int = 1, dtype=None) -> None:
        if max_order not in (0, 1):
            raise ValueError("max_order must be 0 or 1")
        self.max_order = int(max_order)
        self.dtype = resolve_complex_dtype(dtype)
        self._bits = BitCache()

    def distribution(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Distribution:
        """The truncated-and-renormalised noisy outcome distribution."""
        if isinstance(circuit, CompiledProgram):
            return self._distribution_program(circuit, initial_state)
        n = circuit.num_qubits
        noise = noise_model or NoiseModel.ideal()
        instrs = [
            i for i in circuit if i.gate.name not in ("barrier", "measure")
        ]
        sites = self._collect_sites(instrs, noise)

        # Log-weight of the zero-error configuration.
        log_w0 = 0.0
        for s in sites:
            if s.p_identity <= 0:
                # An always-erring channel has no sparse regime.
                raise ValueError(
                    "perturbative engine requires identity probability > 0 "
                    "at every error site"
                )
            log_w0 += math.log(s.p_identity)
        w0 = math.exp(log_w0)

        if initial_state is None:
            base = zero_state(n, 1, self.dtype)
        else:
            base = np.asarray(initial_state, dtype=self.dtype).reshape(1, -1).copy()

        accum = np.zeros(1 << n, dtype=float)
        total_weight = 0.0

        if self.max_order == 0:
            final = base.copy()
            for instr in instrs:
                final = apply_instruction(final, instr, n)
            accum += w0 * probabilities(final)[0]
            total_weight += w0
            return _healthy_distribution(accum, total_weight, n)

        # Forward sweep: ``base`` holds the ideal state after prefix k.
        # ``site_ptr`` walks sites in instruction order.
        site_by_index: dict = {}
        for s in sites:
            site_by_index.setdefault(s.instr_index, []).append(s)

        # Ideal (order-0) term needs the full evolution; compute along the
        # sweep and add at the end.
        for k, instr in enumerate(instrs):
            base = apply_instruction(base, instr, n)
            for site in site_by_index.get(k, ()):
                accum_site, weight_site = self._order1_terms(
                    base, site, instrs[k + 1 :], w0, n
                )
                accum += accum_site
                total_weight += weight_site

        accum += w0 * probabilities(base)[0]
        total_weight += w0
        return _healthy_distribution(accum, total_weight, n)

    # ------------------------------------------------------------------
    # Compiled-program path
    # ------------------------------------------------------------------
    def _distribution_program(
        self,
        program: CompiledProgram,
        initial_state: Optional[np.ndarray],
    ) -> Distribution:
        """Forward sweep over compiled ops (fused suffix evolution)."""
        n = program.num_qubits
        ops = program.ops
        log_w0 = 0.0
        for op in ops:
            if op.kind == "reset":
                raise ValueError(
                    "perturbative engine does not support mid-circuit reset"
                )
            if op.kind != "noise":
                continue
            if not op.is_pauli:
                raise ValueError(
                    "perturbative engine supports Pauli errors only, "
                    f"got {type(op.error).__name__}"
                )
            p_id = op.error.identity_prob
            if p_id <= 0:
                raise ValueError(
                    "perturbative engine requires identity probability > 0 "
                    "at every error site"
                )
            log_w0 += math.log(p_id)
        w0 = math.exp(log_w0)

        if initial_state is None:
            base = zero_state(n, 1, self.dtype)
        else:
            base = (
                np.asarray(initial_state, dtype=self.dtype)
                .reshape(1, -1)
                .copy()
            )

        accum = np.zeros(1 << n, dtype=float)
        total_weight = 0.0

        for i, op in enumerate(ops):
            if op.kind == "unitary":
                op.apply(base, n)
                continue
            if op.kind != "noise" or self.max_order == 0 or not op.e:
                continue
            m = len(op.labels)
            batch = np.repeat(base, m, axis=0)
            for j, label in enumerate(op.labels):
                for pos, ch in enumerate(label):
                    if ch != "I":
                        apply_pauli_rows(
                            batch, ch, op.qubits[pos], np.array([j]), n,
                            self._bits,
                        )
            for later in ops[i + 1 :]:
                if later.kind == "unitary":
                    later.apply(batch, n)
            probs = probabilities(batch)
            weights = w0 * (op.cond * op.e) / op.error.identity_prob
            accum += weights @ probs
            total_weight += float(weights.sum())

        accum += w0 * probabilities(base)[0]
        total_weight += w0
        return _healthy_distribution(accum, total_weight, n)

    # ------------------------------------------------------------------
    def _order1_terms(
        self,
        prefix_state: np.ndarray,
        site: _ErrorSite,
        suffix: Sequence[Instruction],
        w0: float,
        n: int,
    ) -> Tuple[np.ndarray, float]:
        """All single-error configurations at ``site``, as one batch."""
        m = len(site.paulis)
        if m == 0:
            return np.zeros(1 << n, dtype=float), 0.0
        batch = np.repeat(prefix_state, m, axis=0)
        for i, label in enumerate(site.paulis):
            for pos, ch in enumerate(label):
                if ch != "I":
                    apply_pauli_rows(
                        batch, ch, site.qubits[pos], np.array([i]), n, self._bits
                    )
        for instr in suffix:
            batch = apply_instruction(batch, instr, n)
        probs = probabilities(batch)
        # weight(config) = w0 * p_pi / p_identity at this site.
        weights = w0 * site.probs / site.p_identity
        accum = weights @ probs
        return accum, float(weights.sum())

    # ------------------------------------------------------------------
    def _collect_sites(
        self, instrs: List[Instruction], noise: NoiseModel
    ) -> List[_ErrorSite]:
        sites: List[_ErrorSite] = []
        for k, instr in enumerate(instrs):
            for err in noise.gate_errors(instr):
                if not isinstance(err, PauliError):
                    raise ValueError(
                        "perturbative engine supports Pauli errors only, "
                        f"got {type(err).__name__}"
                    )
                if err.num_qubits == 1 and len(instr.qubits) > 1:
                    for q in instr.qubits:
                        sites.append(_ErrorSite(k, (q,), err))
                elif err.num_qubits == len(instr.qubits):
                    sites.append(_ErrorSite(k, instr.qubits, err))
                else:
                    raise ValueError(
                        f"error arity {err.num_qubits} does not match gate "
                        f"{instr.gate.name!r}"
                    )
        return sites
