"""Measurement results: probability distributions and shot counts.

Outcomes are integers whose bit ``q`` is the measured value of qubit
``q`` (little-endian, consistent with the state layout).  Bitstring
rendering is MSB-first, matching the paper's figures and Qiskit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Distribution", "Counts", "extract_register_values"]


def extract_register_values(
    outcomes: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Re-pack the listed qubit bits of each outcome into a small integer.

    ``qubits[i]`` contributes bit ``i`` of the result — i.e. passing a
    register's global indices (LSB first) recovers that register's
    integer value from full-circuit outcomes.
    """
    outcomes = np.asarray(outcomes)
    vals = np.zeros_like(outcomes)
    for pos, q in enumerate(qubits):
        vals |= ((outcomes >> q) & 1) << pos
    return vals


class Distribution:
    """An exact probability distribution over measurement outcomes."""

    def __init__(self, probs: np.ndarray, num_qubits: int) -> None:
        probs = np.asarray(probs, dtype=float)
        if probs.shape != (1 << num_qubits,):
            raise ValueError(
                f"probs has shape {probs.shape}, expected ({1 << num_qubits},)"
            )
        if np.any(probs < -1e-9):
            raise ValueError("negative probability")
        total = probs.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"probabilities sum to {total}")
        self.probs = np.clip(probs, 0.0, None)
        self.probs /= self.probs.sum()
        self.num_qubits = int(num_qubits)
        #: name of the engine that produced this result, set by the
        #: dispatch layer (None when constructed directly).
        self.method: Optional[str] = None

    def sample(self, shots: int, rng: np.random.Generator) -> "Counts":
        """Multinomial sampling of ``shots`` outcomes."""
        raw = rng.multinomial(shots, self.probs)
        return Counts.from_array(raw, self.num_qubits)

    def marginal(self, qubits: Sequence[int]) -> "Distribution":
        """Distribution over the listed qubits only (bit i = qubits[i])."""
        k = len(qubits)
        vals = extract_register_values(
            np.arange(1 << self.num_qubits, dtype=np.int64), qubits
        )
        out = np.bincount(vals, weights=self.probs, minlength=1 << k)
        return Distribution(out, k)

    def top(self, k: int = 1) -> List[Tuple[int, float]]:
        """The ``k`` most probable outcomes as (outcome, prob)."""
        order = np.argsort(self.probs)[::-1][:k]
        return [(int(i), float(self.probs[i])) for i in order]

    def __repr__(self) -> str:
        best = self.top(3)
        body = ", ".join(f"{o}:{p:.3f}" for o, p in best)
        return f"<Distribution {self.num_qubits}q: {body}, ...>"


class Counts:
    """Tabulated shot counts over measurement outcomes."""

    def __init__(self, data: Dict[int, int], num_qubits: int) -> None:
        self._data = {int(k): int(v) for k, v in data.items() if v > 0}
        self.num_qubits = int(num_qubits)
        #: name of the engine that produced this result, set by the
        #: dispatch layer (None when constructed directly).
        self.method: Optional[str] = None
        for k in self._data:
            if not 0 <= k < (1 << self.num_qubits):
                raise ValueError(f"outcome {k} out of range for {num_qubits} qubits")

    @classmethod
    def from_array(cls, arr: np.ndarray, num_qubits: int) -> "Counts":
        """From a dense per-outcome count vector."""
        nz = np.flatnonzero(arr)
        return cls({int(i): int(arr[i]) for i in nz}, num_qubits)

    @classmethod
    def from_outcome_list(
        cls, outcomes: np.ndarray, num_qubits: int
    ) -> "Counts":
        """From one outcome integer per shot."""
        vals, cnt = np.unique(np.asarray(outcomes), return_counts=True)
        return cls(dict(zip(vals.tolist(), cnt.tolist())), num_qubits)

    # -- mapping-ish API ---------------------------------------------------
    def __getitem__(self, outcome: int) -> int:
        return self._data.get(int(outcome), 0)

    def get(self, outcome: int, default: int = 0) -> int:
        """Counts for ``outcome`` (``default`` if absent)."""
        return self._data.get(int(outcome), default)

    def items(self) -> Iterable[Tuple[int, int]]:
        """(outcome, count) pairs, nonzero only."""
        return self._data.items()

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counts):
            return NotImplemented
        return self._data == other._data and self.num_qubits == other.num_qubits

    @property
    def shots(self) -> int:
        """Total number of recorded shots."""
        return sum(self._data.values())

    def to_array(self) -> np.ndarray:
        """Dense per-outcome count vector of length 2**num_qubits."""
        out = np.zeros(1 << self.num_qubits, dtype=np.int64)
        for k, v in self._data.items():
            out[k] = v
        return out

    def most_common(self, k: Optional[int] = None) -> List[Tuple[int, int]]:
        """Outcomes by descending count (ties broken by outcome)."""
        items = sorted(self._data.items(), key=lambda kv: (-kv[1], kv[0]))
        return items if k is None else items[:k]

    def bitstring_counts(self) -> Dict[str, int]:
        """Counts keyed by MSB-first bitstrings."""
        n = self.num_qubits
        return {format(k, f"0{n}b"): v for k, v in self._data.items()}

    def marginal(self, qubits: Sequence[int]) -> "Counts":
        """Counts over the listed qubits (bit i of key = qubits[i])."""
        out: Dict[int, int] = {}
        for k, v in self._data.items():
            m = int(extract_register_values(np.asarray([k]), qubits)[0])
            out[m] = out.get(m, 0) + v
        return Counts(out, len(qubits))

    def to_distribution(self) -> Distribution:
        """Empirical distribution (counts / shots)."""
        arr = self.to_array().astype(float)
        return Distribution(arr / arr.sum(), self.num_qubits)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}:{v}" for k, v in self.most_common(4))
        more = "" if len(self._data) <= 4 else ", ..."
        return f"<Counts {self.shots} shots: {body}{more}>"
