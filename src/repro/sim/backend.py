"""Pluggable array-backend strategy: dtype tiers and device dispatch.

Every layer that allocates simulation state — statevector batches,
density operators, trajectory chunks, compiled-kernel vectors — routes
through one :class:`ArrayBackend` so precision tiers and device
backends slot in behind a single seam (quantumsim's backend hierarchy
is the model: one interface, swappable kernels underneath).

Four named backends exist:

* ``numpy64`` — the default: NumPy + ``complex128``.  The house
  bit-identity contract (seeded RNG streams, sanitizer traces, parity
  tests) is defined on this tier; every kernel builds here first.
* ``numpy32`` — NumPy + ``complex64``: half the memory and bandwidth
  at ~1e-7 per-gate amplitude error.  Kernels are built in
  ``complex128`` and cast once, so the low-precision tier rounds the
  *exact* kernel rather than accumulating single-precision error
  during construction.
* ``cupy64`` / ``cupy32`` — the same two tiers on a CUDA device via
  CuPy.  CuPy is auto-detected; when it (or a device) is absent the
  request **degrades gracefully** to the matching NumPy tier and the
  resolved backend records ``degraded_from`` so operators can see the
  fallback in ``/stats``.

Selection: explicit ``get_backend(name)``, or the ``REPRO_BACKEND``
environment knob (read through :mod:`repro.runtime.envutil`) for the
process-wide default returned by :func:`active_backend`.

Kernel-cache policy lives here too: :func:`dtype_tag` maps a dtype to
the short tag that keys materialised kernels (``c128``/``c64``) so a
float32 kernel can never collide with — or pollute — a float64 one,
and :data:`canonical_complex` names the reference dtype every kernel
builder materialises in before casting down.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..runtime.envutil import env_str

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "active_backend",
    "available_backends",
    "as_complex",
    "canonical_complex",
    "dtype_tag",
    "get_backend",
    "kernel_group",
    "resolve_complex_dtype",
]

#: Environment knob selecting the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

DEFAULT_BACKEND = "numpy64"

#: Every requestable backend name, in preference order.
BACKEND_NAMES = ("numpy64", "numpy32", "cupy64", "cupy32")

#: The reference dtype kernels are built in before any down-cast.
canonical_complex = np.complex128

#: dtype tag -> stats-group name for the per-backend kernel breakdown.
_TAG_TO_GROUP = {"c128": "numpy64", "c64": "numpy32"}


def dtype_tag(dtype: Any) -> str:
    """The kernel-cache key tag of a complex dtype (``c128``/``c64``).

    Unknown dtypes get a ``str()`` tag — still collision-free, just not
    aggregated under a named tier in the stats breakdown.
    """
    dt = np.dtype(dtype)
    if dt == np.dtype(np.complex128):
        return "c128"
    if dt == np.dtype(np.complex64):
        return "c64"
    return str(dt)


def kernel_group(tag: str) -> str:
    """The stats-group (backend tier) name for a kernel dtype tag."""
    return _TAG_TO_GROUP.get(tag, tag)


def as_complex(data: Any, dtype: Any = None) -> np.ndarray:
    """``np.asarray`` at the canonical complex dtype (or an explicit one).

    The sanctioned conversion for wrapper classes (``Statevector``,
    ``DensityMatrix``) whose contract is exact complex128 arithmetic.
    """
    return np.asarray(data, dtype=canonical_complex if dtype is None else dtype)


class ArrayBackend:
    """One (array module, complex dtype) strategy.

    Owns allocation policy for simulation state.  ``xp`` is the array
    namespace (NumPy, or CuPy when a device is present); ``tag`` is the
    kernel-cache key component; ``is_gpu`` says whether arrays live on
    a device (and must round-trip through :meth:`to_numpy` before any
    host-side consumer sees them).
    """

    __slots__ = (
        "name", "xp", "complex_dtype", "real_dtype", "tag", "is_gpu",
        "degraded_from",
    )

    def __init__(
        self,
        name: str,
        xp: Any,
        complex_dtype: Any,
        real_dtype: Any,
        is_gpu: bool = False,
        degraded_from: Optional[str] = None,
    ) -> None:
        self.name = name
        self.xp = xp
        self.complex_dtype = complex_dtype
        self.real_dtype = real_dtype
        self.tag = dtype_tag(complex_dtype)
        self.is_gpu = is_gpu
        #: the requested name when this backend is a graceful fallback
        #: (e.g. ``cupy64`` requested on a machine without CuPy).
        self.degraded_from = degraded_from

    # -- allocation policy ------------------------------------------------
    def zeros(self, shape: Any) -> Any:
        """A zeroed complex array of this backend's dtype."""
        return self.xp.zeros(shape, dtype=self.complex_dtype)

    def empty(self, shape: Any) -> Any:
        """An uninitialised complex array of this backend's dtype."""
        return self.xp.empty(shape, dtype=self.complex_dtype)

    def ones(self, shape: Any) -> Any:
        """A ones complex array of this backend's dtype."""
        return self.xp.ones(shape, dtype=self.complex_dtype)

    def zeros_real(self, shape: Any) -> Any:
        """A zeroed real array of this backend's real dtype."""
        return self.xp.zeros(shape, dtype=self.real_dtype)

    def asarray(self, data: Any) -> Any:
        """Convert ``data`` to this backend's complex dtype (and device)."""
        return self.xp.asarray(data, dtype=self.complex_dtype)

    def empty_like(self, a: Any) -> Any:
        return self.xp.empty_like(a)

    # -- host interchange -------------------------------------------------
    def to_numpy(self, a: Any) -> np.ndarray:
        """A host-side NumPy view/copy of ``a`` (no-op on CPU backends)."""
        if self.is_gpu:  # pragma: no cover — requires a CUDA device
            return self.xp.asnumpy(a)
        return np.asarray(a)

    def describe(self) -> Dict[str, Any]:
        """Operator-facing summary (surfaced in ``/stats``)."""
        return {
            "name": self.name,
            "tag": self.tag,
            "complex_dtype": str(np.dtype(self.complex_dtype)),
            "is_gpu": self.is_gpu,
            "degraded_from": self.degraded_from,
        }

    def __repr__(self) -> str:
        note = f" (degraded from {self.degraded_from})" if self.degraded_from else ""
        return f"<ArrayBackend {self.name}{note}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
#: Separate from _LOCK: get_backend holds _LOCK while building, and the
#: probe must stay acquirable from inside that build.
_PROBE_LOCK = threading.Lock()
_BACKENDS: Dict[str, ArrayBackend] = {}
_CUPY_PROBE: Dict[str, Any] = {}


def _cupy_module() -> Optional[Any]:
    """The importable-and-usable CuPy module, or None (probed once)."""
    with _PROBE_LOCK:
        if "mod" not in _CUPY_PROBE:
            mod = None
            try:  # pragma: no cover — exercised only on CUDA machines
                import cupy  # type: ignore[import-not-found]

                cupy.cuda.runtime.getDeviceCount()
                mod = cupy
            except Exception:
                mod = None
            _CUPY_PROBE["mod"] = mod
        return _CUPY_PROBE["mod"]


def _build_backend(name: str) -> ArrayBackend:
    if name == "numpy64":
        return ArrayBackend("numpy64", np, np.complex128, np.float64)
    if name == "numpy32":
        return ArrayBackend("numpy32", np, np.complex64, np.float32)
    if name in ("cupy64", "cupy32"):
        cupy = _cupy_module()
        wide = name.endswith("64")
        if cupy is not None:  # pragma: no cover — requires a CUDA device
            return ArrayBackend(
                name,
                cupy,
                np.complex128 if wide else np.complex64,
                np.float64 if wide else np.float32,
                is_gpu=True,
            )
        # Graceful degradation: same precision tier on the host.
        host = "numpy64" if wide else "numpy32"
        fallback = _build_backend(host)
        return ArrayBackend(
            fallback.name,
            fallback.xp,
            fallback.complex_dtype,
            fallback.real_dtype,
            degraded_from=name,
        )
    raise ValueError(
        f"unknown backend {name!r}; expected one of {list(BACKEND_NAMES)}"
    )


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend by name (None/"" -> the active default).

    GPU names degrade gracefully to the matching NumPy tier when CuPy
    or a device is missing — callers never have to handle absence.
    """
    if not name:
        return active_backend()
    with _LOCK:
        backend = _BACKENDS.get(name)
        if backend is None:
            backend = _build_backend(name)
            _BACKENDS[name] = backend
        return backend


def active_backend() -> ArrayBackend:
    """The process default, selected by ``REPRO_BACKEND`` (``numpy64``)."""
    return get_backend(env_str(BACKEND_ENV, DEFAULT_BACKEND).lower())


def available_backends() -> Tuple[str, ...]:
    """Requestable backend names (GPU names listed even when they would
    degrade — requesting them is always legal)."""
    return BACKEND_NAMES


def resolve_complex_dtype(dtype: Any = None) -> Any:
    """An engine's state dtype: explicit wins, else the active backend's.

    The single hook every engine constructor funnels ``dtype=None``
    through, so ``REPRO_BACKEND=numpy32`` flips the whole stack while
    an explicit ``dtype=np.complex128`` still pins a caller's tier.
    """
    if dtype is None:
        return active_backend().complex_dtype
    return dtype
