"""Exact density-matrix simulation with noise channels.

The gold standard for small registers: the full CPTP map of every gate
error is applied exactly, so this engine validates the trajectory
engine's stochastic unravelling (benchmark E10) and serves small-n
studies directly.  Memory is ``4**n`` complex values — practical to
~12 qubits on a laptop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..noise.channels import (
    KrausError,
    PauliError,
    QuantumError,
    ResetError,
)
from ..noise.model import NoiseModel
from ..noise.pauli import PAULI_MATRICES
from ..runtime.errors import width_limit_error
from ..runtime.health import check_trace, norm_tolerance
from .backend import as_complex, resolve_complex_dtype
from .ops import apply_gate_matrix
from .program import CompiledProgram, DiagonalOp, RawGateOp, _term_instruction
from .result import Distribution

__all__ = ["DensityMatrixEngine", "DensityMatrix"]


class DensityMatrix:
    """A density operator with measurement helpers."""

    def __init__(self, data: np.ndarray, num_qubits: int) -> None:
        dim = 1 << num_qubits
        data = as_complex(data)
        if data.shape != (dim, dim):
            raise ValueError(f"rho has shape {data.shape}, expected {(dim, dim)}")
        self.data = data
        self.num_qubits = int(num_qubits)

    @classmethod
    def from_statevector(cls, vec: np.ndarray, num_qubits: int) -> "DensityMatrix":
        """|psi><psi| from a pure state vector."""
        v = as_complex(vec).reshape(-1)
        return cls(np.outer(v, v.conj()), num_qubits)

    def probabilities(self) -> Distribution:
        """Measurement distribution: the (clipped) diagonal of rho."""
        p = np.real(np.diag(self.data)).copy()
        p = np.clip(p, 0.0, None)
        return Distribution(p / p.sum(), self.num_qubits)

    def purity(self) -> float:
        """tr(rho^2); 1 for pure states."""
        return float(np.real(np.trace(self.data @ self.data)))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """<psi| rho |psi> — Jozsa fidelity against a pure target."""
        v = as_complex(vec).reshape(-1)
        return float(np.real(v.conj() @ self.data @ v))

    def __repr__(self) -> str:
        return f"<DensityMatrix {self.num_qubits}q, purity={self.purity():.4f}>"


def _apply_unitary_rho(
    rho: np.ndarray, U: np.ndarray, targets: Sequence[int], n: int
) -> np.ndarray:
    """rho -> U rho U^dag via two batched vector passes."""
    # Ket side: each column of rho is a state; batch over columns.
    rho = apply_gate_matrix(np.ascontiguousarray(rho.T), U, targets, n).T
    # Bra side: each row is a conjugated state; apply conj(U).
    rho = apply_gate_matrix(np.ascontiguousarray(rho), U.conj(), targets, n)
    return rho


def _apply_kraus_rho(
    rho: np.ndarray,
    kraus: List[np.ndarray],
    targets: Sequence[int],
    n: int,
) -> np.ndarray:
    """rho -> sum_m K_m rho K_m^dag."""
    acc = np.zeros_like(rho)
    for K in kraus:
        acc += _apply_unitary_rho(rho.copy(), K, targets, n)
    return acc


class DensityMatrixEngine:
    """Exact noisy evolution of the full density operator."""

    #: refuse above this size (4**n memory blow-up)
    max_qubits = 13

    def __init__(self, dtype=None) -> None:
        self.dtype = resolve_complex_dtype(dtype)

    def run(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        noise_model: Optional[NoiseModel] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> DensityMatrix:
        """Evolve through ``circuit`` applying channels after noisy gates.

        Measurements are ignored (terminal measurement is implicit in
        :meth:`distribution`); mid-circuit reset applies the reset map.
        A :class:`~repro.sim.program.CompiledProgram` runs op by op with
        its pre-resolved noise sites (``noise_model`` is then ignored).
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise width_limit_error("DensityMatrixEngine", self.max_qubits, n)
        dim = 1 << n
        if initial_state is None:
            rho = np.zeros((dim, dim), dtype=self.dtype)
            rho[0, 0] = 1.0
        else:
            vec = np.asarray(initial_state, dtype=self.dtype).reshape(-1)
            if vec.shape[0] != dim:
                raise ValueError("initial state has wrong dimension")
            rho = np.outer(vec, vec.conj())
        if isinstance(circuit, CompiledProgram):
            rho = self._run_program_rho(rho, circuit, n)
            check_trace(rho, "density engine", atol=norm_tolerance(rho.dtype))
            return DensityMatrix(rho, n)
        noise = noise_model or NoiseModel.ideal()

        for instr in circuit:
            name = instr.gate.name
            if name in ("barrier", "measure"):
                continue
            if name == "reset":
                rho = self._reset_qubit(rho, instr.qubits[0], n)
                continue
            rho = _apply_unitary_rho(rho, instr.gate.matrix, instr.qubits, n)
            for err in noise.gate_errors(instr):
                rho = self._apply_error(rho, err, instr, n)
        check_trace(rho, "density engine", atol=norm_tolerance(rho.dtype))
        return DensityMatrix(rho, n)

    def _run_program_rho(
        self, rho: np.ndarray, program: CompiledProgram, n: int
    ) -> np.ndarray:
        """Walk compiled ops over the density operator."""
        for op in program.ops:
            kind = op.kind
            if kind == "unitary":
                if isinstance(op, DiagonalOp):
                    # rho -> D rho D^dag: rho_ij *= d_i conj(d_j),
                    # as two broadcast passes (no dim x dim temporary).
                    d = op.diag(n, rho.dtype)
                    rho = rho * d[:, None]
                    rho *= d.conj()[None, :]
                elif isinstance(op, RawGateOp):
                    rho = _apply_unitary_rho(
                        rho, op.instr.gate.matrix, op.instr.qubits, n
                    )
                else:
                    for term in op.term_list():
                        instr = _term_instruction(*term)
                        rho = _apply_unitary_rho(
                            rho, instr.gate.matrix, instr.qubits, n
                        )
            elif kind == "noise":
                rho = self._apply_error_on(rho, op.error, op.qubits, n)
            elif kind == "reset":
                rho = self._reset_qubit(rho, op.qubit, n)
        return rho

    def distribution(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        noise_model: Optional[NoiseModel] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Distribution:
        """Exact outcome distribution, including readout error if any."""
        dm = self.run(circuit, noise_model, initial_state)
        dist = dm.probabilities()
        if isinstance(circuit, CompiledProgram):
            return _apply_readout_table_to_distribution(
                dist, circuit.readout, circuit.num_qubits
            )
        noise = noise_model or NoiseModel.ideal()
        return _apply_readout_to_distribution(dist, noise, circuit.num_qubits)

    # ------------------------------------------------------------------
    def _apply_error(
        self,
        rho: np.ndarray,
        err: QuantumError,
        instr: Instruction,
        n: int,
    ) -> np.ndarray:
        # A 1q channel attached to a wider gate hits each qubit
        # independently (e.g. thermal relaxation on both CX qubits).
        if err.num_qubits == 1 and len(instr.qubits) > 1:
            for q in instr.qubits:
                rho = self._apply_error_on(rho, err, (q,), n)
            return rho
        if err.num_qubits != len(instr.qubits):
            raise ValueError(
                f"error arity {err.num_qubits} does not match gate "
                f"{instr.gate.name!r} on {len(instr.qubits)} qubits"
            )
        return self._apply_error_on(rho, err, instr.qubits, n)

    def _apply_error_on(
        self,
        rho: np.ndarray,
        err: QuantumError,
        qubits: Sequence[int],
        n: int,
    ) -> np.ndarray:
        if isinstance(err, PauliError):
            acc = np.zeros_like(rho)
            for label, pr in zip(err.paulis, err.probs):
                if pr <= 0:
                    continue
                term = rho.copy()
                for pos, ch in enumerate(label):
                    if ch != "I":
                        term = _apply_unitary_rho(
                            term, PAULI_MATRICES[ch], (qubits[pos],), n
                        )
                acc += pr * term
            return acc
        if isinstance(err, (KrausError, ResetError)):
            return _apply_kraus_rho(rho, err.kraus_operators(), qubits, n)
        return _apply_kraus_rho(rho, err.kraus_operators(), qubits, n)

    def _reset_qubit(self, rho: np.ndarray, q: int, n: int) -> np.ndarray:
        k0 = as_complex([[1, 0], [0, 0]])
        k1 = as_complex([[0, 1], [0, 0]])
        return _apply_kraus_rho(rho, [k0, k1], (q,), n)


def _apply_readout_table_to_distribution(
    dist: Distribution, readout, n: int
) -> Distribution:
    """Fold a compiled program's resolved readout table into ``dist``."""
    if not readout:
        return dist
    p = dist.probs.reshape(1, -1).astype(complex)
    for q, p01, p10 in readout:
        A = as_complex([[1 - p01, p10], [p01, 1 - p10]])
        p = apply_gate_matrix(p, A, (q,), n)
    return Distribution(np.real(p[0]), n)


def _apply_readout_to_distribution(
    dist: Distribution, noise: NoiseModel, n: int
) -> Distribution:
    """Fold per-qubit readout assignment matrices into a distribution."""
    if noise.is_ideal:
        return dist
    p = dist.probs.reshape(1, -1).astype(complex)
    touched = False
    for q in range(n):
        ro = noise.readout_error(q)
        if ro is None:
            continue
        touched = True
        p = apply_gate_matrix(p, ro.assignment_matrix.astype(complex), (q,), n)
    if not touched:
        return dist
    return Distribution(np.real(p[0]), n)
