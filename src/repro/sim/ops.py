"""Low-level vectorized state-update kernels.

All engines share these kernels.  A batch of pure states is stored as a
C-contiguous ``(B, 2**n)`` complex array: row ``b`` is trajectory ``b``,
and flat index ``i`` encodes qubit ``q`` as bit ``q`` of ``i``
(little-endian, matching the gate-matrix convention).

Following the HPC guides, nothing here loops over amplitudes in Python:
every kernel is a reshape + slice/einsum over the whole batch, so the
per-gate cost is one or two BLAS/ufunc passes regardless of batch size.
Diagonal gates (the bulk of QFT arithmetic: ``rz``, ``cp``, ``ccp``)
multiply a masked slice in place; ``x``/``cx``/``ccx``/``swap`` are pure
index permutations; only genuinely dense gates (``h``, ``sx``) pay for a
matrix contraction.
"""

from __future__ import annotations

import cmath
from typing import Dict, Sequence, Tuple

import numpy as np

from ..circuits.gates import phase_on_ones

__all__ = [
    "apply_gate_matrix",
    "apply_diagonal",
    "apply_instruction",
    "apply_pauli_rows",
    "apply_pauli_string_rows",
    "probabilities",
    "BitCache",
]


class BitCache:
    """Per-(n, qubit) index helpers, built lazily and shared.

    ``mask_bit(n, q)`` — boolean array over 2**n flat indices, True where
    bit ``q`` is set.  ``perm_flip(n, q)`` — the permutation ``i ^ 2**q``.
    These back the Pauli fast paths in the trajectory engine.
    """

    def __init__(self) -> None:
        self._masks: Dict[Tuple[int, int], np.ndarray] = {}
        self._perms: Dict[Tuple[int, int], np.ndarray] = {}
        self._signs: Dict[Tuple[int, int], np.ndarray] = {}

    def mask_bit(self, n: int, q: int) -> np.ndarray:
        key = (n, q)
        m = self._masks.get(key)
        if m is None:
            idx = np.arange(1 << n, dtype=np.intp)
            m = ((idx >> q) & 1).astype(bool)
            m.setflags(write=False)
            # repro: allow[RACE001] reason=GIL-atomic memoised insert of an immutable value; duplicate builds are identical and a lock would serialise every gate application
            self._masks[key] = m
        return m

    def perm_flip(self, n: int, q: int) -> np.ndarray:
        key = (n, q)
        p = self._perms.get(key)
        if p is None:
            idx = np.arange(1 << n, dtype=np.intp)
            p = idx ^ (1 << q)
            p.setflags(write=False)
            # repro: allow[RACE001] reason=GIL-atomic memoised insert of an immutable value; see mask_bit
            self._perms[key] = p
        return p

    def sign_z(self, n: int, q: int) -> np.ndarray:
        """(+1/-1) vector: -1 where bit ``q`` is set (Z eigenvalues)."""
        key = (n, q)
        s = self._signs.get(key)
        if s is None:
            s = np.where(self.mask_bit(n, q), -1.0, 1.0)
            s.setflags(write=False)
            # repro: allow[RACE001] reason=GIL-atomic memoised insert of an immutable value; see mask_bit
            self._signs[key] = s
        return s


_GLOBAL_BITS = BitCache()


# ---------------------------------------------------------------------------
# Shape helpers
# ---------------------------------------------------------------------------

def _split_1q(state: np.ndarray, q: int, n: int) -> np.ndarray:
    """View ``(B, 2**n)`` as ``(B * outer, 2, inner)`` exposing qubit ``q``.

    ``inner = 2**q`` (bits below q vary fastest), no copy.
    """
    B = state.shape[0]
    inner = 1 << q
    outer = 1 << (n - 1 - q)
    return state.reshape(B * outer, 2, inner)


def _split_2q(state: np.ndarray, hi: int, lo: int, n: int) -> np.ndarray:
    """View exposing two qubits ``hi > lo`` as separate axes.

    Returns shape ``(B*o1, 2, o2, 2, o3)`` with axis 1 = qubit ``hi``,
    axis 3 = qubit ``lo``; no copy.
    """
    B = state.shape[0]
    o3 = 1 << lo
    o2 = 1 << (hi - lo - 1)
    o1 = 1 << (n - 1 - hi)
    return state.reshape(B * o1, 2, o2, 2, o3)


# ---------------------------------------------------------------------------
# Dense application
# ---------------------------------------------------------------------------

def _apply_1q_dense(state: np.ndarray, U: np.ndarray, q: int, n: int) -> None:
    """In-place dense 1-qubit gate on every batch row.

    Split-view formulation with four scaled adds; measured faster than
    a gather-based variant at every qubit position (fancy indexing on
    2**n elements costs more than the strided slice arithmetic).
    """
    s = _split_1q(state, q, n)
    s0 = s[:, 0, :]
    s1 = s[:, 1, :]
    new0 = U[0, 0] * s0 + U[0, 1] * s1
    s[:, 1, :] = U[1, 0] * s0 + U[1, 1] * s1
    s[:, 0, :] = new0


def _apply_2q_dense(
    state: np.ndarray, U: np.ndarray, t0: int, t1: int, n: int
) -> None:
    """In-place dense 2-qubit gate; ``t0`` is the matrix LSB qubit."""
    hi, lo = (t1, t0) if t1 > t0 else (t0, t1)
    # U indices: (r1 r0), little-endian in (t0, t1).  Reorder so the
    # first tensor axis is the *hi* qubit.
    U4 = U.reshape(2, 2, 2, 2)  # [r_t1, r_t0, c_t1, c_t0]
    if t0 > t1:  # t0 is hi: want [r_hi, r_lo, c_hi, c_lo] = [r_t0, r_t1, ...]
        U4 = U4.transpose(1, 0, 3, 2)
    s = _split_2q(state, hi, lo, n)
    out = np.einsum("abcd,zcudv->zaubv", U4, s, optimize=True)
    s[...] = out


def apply_gate_matrix(
    state: np.ndarray, U: np.ndarray, targets: Sequence[int], n: int
) -> np.ndarray:
    """Apply a little-endian k-qubit unitary to ``(B, 2**n)`` ``state``.

    Returns the updated array (same object for the in-place fast paths,
    a new array for the general k>=3 path).
    """
    k = len(targets)
    if k == 1:
        _apply_1q_dense(state, U, targets[0], n)
        return state
    if k == 2:
        _apply_2q_dense(state, U, targets[0], targets[1], n)
        return state
    # General path: bring target axes last (t0 fastest), contract.
    B = state.shape[0]
    s = state.reshape((B,) + (2,) * n)
    # Qubit q lives on tensor axis 1 + (n-1-q).
    src = [1 + (n - 1 - t) for t in reversed(targets)]
    dst = list(range(n + 1 - k, n + 1))
    moved = np.moveaxis(s, src, dst)
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(-1, 1 << k)
    flat = flat @ U.T
    moved2 = flat.reshape(shape)
    out = np.moveaxis(moved2, dst, src)
    return np.ascontiguousarray(out).reshape(B, 1 << n)


# ---------------------------------------------------------------------------
# Diagonal / permutation fast paths
# ---------------------------------------------------------------------------

def apply_diagonal(
    state: np.ndarray, diag: np.ndarray, targets: Sequence[int], n: int
) -> None:
    """In-place k-qubit diagonal gate: ``state[:, i] *= diag[bits(i)]``."""
    idx = np.zeros(1 << n, dtype=np.intp)
    for pos, t in enumerate(targets):
        idx |= ((np.arange(1 << n, dtype=np.intp) >> t) & 1) << pos
    state *= diag[idx]


def _apply_phase_on_mask(
    state: np.ndarray, phase: complex, qubits: Sequence[int], n: int
) -> None:
    """Multiply ``phase`` into entries whose listed bits are all 1."""
    mask = _GLOBAL_BITS.mask_bit(n, qubits[0]).copy()
    for q in qubits[1:]:
        mask &= _GLOBAL_BITS.mask_bit(n, q)
    state[:, mask] *= phase


def _apply_x(state: np.ndarray, q: int, n: int) -> None:
    s = _split_1q(state, q, n)
    tmp = s[:, 0, :].copy()
    s[:, 0, :] = s[:, 1, :]
    s[:, 1, :] = tmp


def _apply_cx(state: np.ndarray, c: int, t: int, n: int) -> None:
    hi, lo = (c, t) if c > t else (t, c)
    s = _split_2q(state, hi, lo, n)
    if c > t:  # control on axis1, target on axis3
        a = s[:, 1, :, 0, :]
        b = s[:, 1, :, 1, :]
    else:  # control on axis3, target on axis1
        a = s[:, 0, :, 1, :]
        b = s[:, 1, :, 1, :]
    tmp = a.copy()
    a[...] = b
    b[...] = tmp


def _apply_swap(state: np.ndarray, q1: int, q2: int, n: int) -> None:
    hi, lo = (q1, q2) if q1 > q2 else (q2, q1)
    s = _split_2q(state, hi, lo, n)
    a = s[:, 0, :, 1, :]
    b = s[:, 1, :, 0, :]
    tmp = a.copy()
    a[...] = b
    b[...] = tmp


def _apply_ccx(state: np.ndarray, c1: int, c2: int, t: int, n: int) -> None:
    mask = _GLOBAL_BITS.mask_bit(n, c1) & _GLOBAL_BITS.mask_bit(n, c2)
    src = np.flatnonzero(mask & ~_GLOBAL_BITS.mask_bit(n, t))
    dst = src | (1 << t)
    tmp = state[:, src].copy()
    state[:, src] = state[:, dst]
    state[:, dst] = tmp


# ---------------------------------------------------------------------------
# Instruction dispatch
# ---------------------------------------------------------------------------

def apply_instruction(state: np.ndarray, instr, n: int) -> np.ndarray:
    """Apply one circuit instruction to the batch; returns the array.

    Measurement/barrier/reset are *not* handled here — engines own those.
    """
    gate = instr.gate
    name = gate.name
    q = instr.qubits
    if name == "barrier" or name == "id":
        return state
    if name == "rz":
        lam = gate.params[0]
        # One fused broadcast multiply: e^{-i lam/2} where bit 0, e^{+i
        # lam/2} where bit 1 (cheaper than a scalar pass plus a masked
        # pass on large batches).
        lo, hi = cmath.exp(-0.5j * lam), cmath.exp(0.5j * lam)
        phase = np.where(_GLOBAL_BITS.mask_bit(n, q[0]), hi, lo)
        state *= phase
        return state
    phase = phase_on_ones(gate)
    if phase is not None:
        _apply_phase_on_mask(state, phase, q, n)
        return state
    if name == "x":
        _apply_x(state, q[0], n)
        return state
    if name == "cx":
        _apply_cx(state, q[0], q[1], n)
        return state
    if name == "ccx":
        _apply_ccx(state, q[0], q[1], q[2], n)
        return state
    if name == "swap":
        _apply_swap(state, q[0], q[1], n)
        return state
    if gate.is_diagonal:
        apply_diagonal(state, np.diag(gate.matrix).copy(), q, n)
        return state
    return apply_gate_matrix(state, gate.matrix, q, n)


# ---------------------------------------------------------------------------
# Pauli errors on row subsets (trajectory engine)
# ---------------------------------------------------------------------------

def apply_pauli_rows(
    state: np.ndarray,
    pauli: str,
    qubit: int,
    rows: np.ndarray,
    n: int,
    bits: BitCache = _GLOBAL_BITS,
) -> None:
    """Apply a single-qubit Pauli to a subset of batch rows, in place.

    ``pauli`` in {"I","X","Y","Z"}; ``rows`` is an integer index array.
    X is an index permutation, Z a sign flip, Y their product with the
    ±i phase — none require a matrix product.
    """
    if pauli == "I" or rows.size == 0:
        return
    if pauli == "Z":
        state[rows] *= bits.sign_z(n, qubit)
        return
    perm = bits.perm_flip(n, qubit)
    if pauli == "X":
        state[rows] = state[np.ix_(rows, perm)]
        return
    if pauli == "Y":
        # (Y psi)[i] = i * (2 b_q(i) - 1) * psi[i ^ 2**q]
        yfac = 1j * (-bits.sign_z(n, qubit))
        state[rows] = state[np.ix_(rows, perm)] * yfac
        return
    raise ValueError(f"unknown Pauli {pauli!r}")


def apply_pauli_string_rows(
    state: np.ndarray,
    label: str,
    qubits: Sequence[int],
    rows: np.ndarray,
    n: int,
    bits: BitCache = _GLOBAL_BITS,
) -> None:
    """Apply a multi-qubit Pauli string to a subset of batch rows.

    ``label`` is little-endian over ``qubits`` (``label[k]`` acts on
    ``qubits[k]``), matching the channel tables of
    :class:`~repro.noise.channels.PauliError`.  Identity factors are
    skipped; each non-identity factor reuses :func:`apply_pauli_rows`,
    so the result is bit-identical to applying the factors one by one.
    """
    if len(label) != len(qubits):
        raise ValueError(
            f"Pauli string {label!r} does not match {len(qubits)} qubit(s)"
        )
    if rows.size == 0:
        return
    for pos, ch in enumerate(label):
        if ch != "I":
            apply_pauli_rows(state, ch, qubits[pos], rows, n, bits)


def probabilities(state: np.ndarray, clip_tol: float = 1e-6) -> np.ndarray:
    """Measurement probabilities ``|amp|**2`` per batch row, renormalised.

    The returned array is always float64: on the low-precision tier
    (complex64 states) the squared magnitudes are promoted before the
    row sums, then clipped into ``[0, 1 + clip_tol]`` so float32 drift
    can never hand the samplers negative or >1 mass.  On complex128
    input the float64 path is the historical one bit-for-bit (the clip
    is skipped — ``|amp|**2`` is nonnegative by construction and the
    renormalising divide already bounds the mass).
    """
    p = np.abs(state) ** 2
    if p.dtype != np.float64:
        p = p.astype(np.float64)
        np.clip(p, 0.0, 1.0 + clip_tol, out=p)
    norm = p.sum(axis=1, keepdims=True)
    # Guard against drift from long gate sequences.
    np.divide(p, norm, out=p, where=norm > 0)
    return p
