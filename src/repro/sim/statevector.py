"""Ideal (noise-free) statevector simulation.

Used for the x-origin reference points of the paper's figures, for
verifying arithmetic circuits exactly, and as the base evolution inside
the noisy engines.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..runtime.health import check_norms
from .backend import as_complex, get_backend, resolve_complex_dtype
from .ops import apply_instruction, probabilities
from .program import CompiledProgram
from .result import Distribution

__all__ = ["StatevectorEngine", "Statevector", "zero_state", "evolve_batch"]


def zero_state(
    num_qubits: int, batch: int = 1, dtype=None
) -> np.ndarray:
    """The ``(batch, 2**n)`` all-|0> state array.

    ``dtype=None`` resolves through the active
    :mod:`~repro.sim.backend` (``REPRO_BACKEND``); an explicit dtype
    pins the tier for this allocation.
    """
    backend = get_backend()
    if dtype is not None and np.dtype(dtype) != np.dtype(backend.complex_dtype):
        state = np.zeros((batch, 1 << num_qubits), dtype=dtype)
    else:
        state = backend.zeros((batch, 1 << num_qubits))
    state[:, 0] = 1.0
    return state


def evolve_batch(
    state: np.ndarray,
    circuit: Union[QuantumCircuit, CompiledProgram],
    skip_non_unitary: bool = True,
) -> np.ndarray:
    """Apply every unitary instruction of ``circuit`` to the batch.

    Accepts either a raw circuit (interpreted gate by gate) or a
    :class:`~repro.sim.program.CompiledProgram` (executed op by op with
    noise/measure/reset sites skipped).
    """
    if isinstance(circuit, CompiledProgram):
        return evolve_program(state, circuit)
    n = circuit.num_qubits
    for instr in circuit:
        if not instr.gate.is_unitary:
            if skip_non_unitary or instr.gate.name == "barrier":
                continue
            raise ValueError(f"non-unitary op {instr.gate.name!r} in circuit")
        state = apply_instruction(state, instr, n)
    return state


def evolve_program(state: np.ndarray, program: CompiledProgram) -> np.ndarray:
    """Apply a compiled program's unitary ops to the batch, in place."""
    n = program.num_qubits
    for op in program.ops:
        if op.kind == "unitary":
            op.apply(state, n)
    return state


class Statevector:
    """A single pure state with measurement helpers."""

    def __init__(self, data: np.ndarray, num_qubits: int) -> None:
        data = as_complex(data).reshape(-1)
        if data.shape != (1 << num_qubits,):
            raise ValueError(
                f"state has {data.shape[0]} amplitudes, expected {1 << num_qubits}"
            )
        self.data = data
        self.num_qubits = int(num_qubits)

    @classmethod
    def from_int(cls, value: int, num_qubits: int) -> "Statevector":
        """Computational basis state |value>."""
        data = as_complex(np.zeros(1 << num_qubits))
        data[value] = 1.0
        return cls(data, num_qubits)

    def probabilities(self) -> Distribution:
        """Born-rule measurement distribution."""
        p = np.abs(self.data) ** 2
        return Distribution(p / p.sum(), self.num_qubits)

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|**2."""
        return float(np.abs(np.vdot(self.data, other.data)) ** 2)

    def equiv(self, other: "Statevector", atol: float = 1e-9) -> bool:
        """Equality up to global phase."""
        return self.fidelity(other) > 1.0 - atol

    def __repr__(self) -> str:
        return f"<Statevector {self.num_qubits}q>"


class StatevectorEngine:
    """Exact, noiseless evolution of a single pure state."""

    def __init__(self, dtype=None) -> None:
        self.dtype = resolve_complex_dtype(dtype)

    def run(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        initial_state: Optional[np.ndarray] = None,
    ) -> Statevector:
        """Evolve ``initial_state`` (default |0...0>) through ``circuit``.

        Measurement and barrier instructions are ignored — use
        :meth:`distribution` + sampling for shot outcomes.  A
        :class:`~repro.sim.program.CompiledProgram` is executed directly
        (its noise sites, if any, are skipped — this engine is ideal).
        """
        n = circuit.num_qubits
        if initial_state is None:
            state = zero_state(n, 1, self.dtype)
        else:
            state = np.array(initial_state, dtype=self.dtype).reshape(1, -1)
            if state.shape[1] != 1 << n:
                raise ValueError(
                    f"initial state has {state.shape[1]} amplitudes, "
                    f"expected {1 << n}"
                )
        state = evolve_batch(state, circuit)
        check_norms(state, "statevector engine")
        return Statevector(state[0], n)

    def distribution(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        initial_state: Optional[np.ndarray] = None,
    ) -> Distribution:
        """The exact outcome distribution of measuring all qubits."""
        sv = self.run(circuit, initial_state)
        p = probabilities(sv.data.reshape(1, -1))[0]
        return Distribution(p, circuit.num_qubits)
