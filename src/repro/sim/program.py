"""Compiled execution IR shared by every simulation engine.

:func:`compile_circuit` lowers a transpiled :class:`QuantumCircuit` plus
a :class:`NoiseModel` into a flat :class:`CompiledProgram` — a tuple of
typed ops with everything rate-independent hoisted out of the hot loop:

* :class:`DiagonalOp` — a fused run of adjacent diagonal gates (``rz``,
  ``p``/``cp``/``ccp``, ``z``/``s``/``t``...), executed as one
  precomputed ``2**n`` phase-vector multiply;
* :class:`PermutationOp` — ``x``/``cx``/``ccx``/``swap`` index
  permutations (``ccx`` precomputes its source/destination index pair);
* :class:`DenseOp` — genuinely dense 1q gates (``h``, ``sx``) via a
  broadcast matmul when the target qubit is high enough for the BLAS
  pass to beat the strided four-add kernel;
* :class:`GateOp` — fallback that replays the interpreter kernel of
  :mod:`repro.sim.ops` exactly (bit-for-bit);
* :class:`NoiseOp` — an error-channel site with the resolved
  :class:`QuantumError` and, for Pauli channels, the conditioned
  split-sampling table precomputed;
* :class:`ResetSiteOp` / :class:`MeasureSiteOp` — non-unitary circuit
  instructions, executed by the engines themselves.

Compilation is cached at two levels so a rate-only sweep lowers each
circuit exactly once:

1. **lowering** — keyed by circuit identity (weakly) plus the noise
   model's :meth:`~repro.noise.model.NoiseModel.structure_key` and the
   ``optimize`` flag.  The skeleton fixes the op layout and the *slots*
   of every noise site but not the channel contents.
2. **bind** — keyed by the noise model's full
   :meth:`~repro.noise.model.NoiseModel.fingerprint`; resolves slots to
   channels and the per-qubit readout table.  Binding is cheap (no
   circuit walk of kernels), so recompilation across error rates costs
   microseconds.

Materialised kernels (full ``2**n`` diagonal vectors, ``ccx`` index
pairs) are *not* stored on the ops — ops hold only compact picklable
descriptors, and kernels build lazily into a process-wide content-keyed
LRU (:class:`KernelCache`, budget via ``REPRO_KERNEL_CACHE_MB``).  Two
programs, or two thousand ``rz`` ops with the same angle, share one
vector; shipping a program to a worker process pickles descriptors only.
"""

from __future__ import annotations

import cmath
import hashlib
import threading
import weakref
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits import gates as G
from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import is_diagonal_gate, phase_on_ones
from ..noise.channels import PauliError, QuantumError, ResetError
from ..noise.model import NoiseModel
from ..runtime.envutil import env_mb_bytes
from .backend import canonical_complex, dtype_tag, kernel_group
from .ops import _GLOBAL_BITS, _apply_phase_on_mask, apply_instruction

__all__ = [
    "CompiledProgram",
    "CompileStats",
    "compile_circuit",
    "as_program",
    "circuit_fingerprint",
    "compile_cache_stats",
    "reset_compile_caches",
    "kernel_cache_stats",
]

# Gate descriptor: (name, qubits, params) — hashable, picklable, enough
# to rebuild the Gate/Instruction via the registry.
Term = Tuple[str, Tuple[int, ...], Tuple[float, ...]]


def _term(instr: Instruction) -> Term:
    return (instr.gate.name, instr.qubits, tuple(instr.gate.params))


@lru_cache(maxsize=4096)
def _term_instruction(name: str, qubits: Tuple[int, ...],
                      params: Tuple[float, ...]) -> Instruction:
    """Rebuild (and share) the Instruction for a gate descriptor."""
    return Instruction(G.make_gate(name, *params), qubits)


# ---------------------------------------------------------------------------
# Lazy kernel materialisation
# ---------------------------------------------------------------------------

class KernelCache:
    """Content-keyed LRU for materialised kernels with a byte budget.

    Keys are pure-value tuples (kind, n, descriptors...), so identical
    gates anywhere — across ops, programs, engines — share one array.
    Dtype-dependent kernels carry their :func:`~repro.sim.backend.
    dtype_tag` in the key, so a float32 kernel can never collide with
    a float64 one; ``group`` attributes each entry to a backend tier
    for the per-backend hit/miss/bytes breakdown ("shared" covers
    dtype-independent kernels such as index permutations).
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is None:
            budget_bytes = env_mb_bytes("REPRO_KERNEL_CACHE_MB", 256)
        self.budget_bytes = budget_bytes
        self._entries: Dict[tuple, object] = {}
        self._nbytes: Dict[tuple, int] = {}
        self._group_of: Dict[tuple, str] = {}
        self._lock = threading.RLock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.groups: Dict[str, Dict[str, int]] = {}

    def _group_counters(self, group: str) -> Dict[str, int]:
        # Reentrant: every caller already holds self._lock (an RLock),
        # so this stands alone safely too.
        with self._lock:
            g = self.groups.get(group)
            if g is None:
                g = {"hits": 0, "misses": 0, "entries": 0, "bytes": 0}
                self.groups[group] = g
            return g

    def get(self, key: tuple, builder, group: str = "shared") -> object:
        # The whole read-modify-write (recency refresh, eviction loop,
        # byte accounting) must be atomic: thread-tier executor workers
        # share this instance.  A duplicate builder() run under
        # contention would be wasteful but correct; a torn eviction
        # would corrupt total_bytes forever.
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
                self._group_counters(group)["hits"] += 1
                # Refresh recency (dicts preserve insertion order).
                del self._entries[key]
                self._entries[key] = value
                return value
            self.misses += 1
            value = builder()
            nbytes = sum(
                getattr(a, "nbytes", 0)
                for a in (value if isinstance(value, tuple) else (value,))
            )
            while (
                self.total_bytes + nbytes > self.budget_bytes
                and self._entries
            ):
                old_key = next(iter(self._entries))
                old_bytes = self._nbytes.pop(old_key)
                self.total_bytes -= old_bytes
                del self._entries[old_key]
                old_group = self._group_counters(self._group_of.pop(old_key))
                old_group["entries"] -= 1
                old_group["bytes"] -= old_bytes
                self.evictions += 1
            self._entries[key] = value
            self._nbytes[key] = nbytes
            self._group_of[key] = group
            self.total_bytes += nbytes
            g = self._group_counters(group)
            g["misses"] += 1
            g["entries"] += 1
            g["bytes"] += nbytes
            return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes.clear()
            self._group_of.clear()
            self.total_bytes = 0
            for g in self.groups.values():
                g["entries"] = 0
                g["bytes"] = 0


_KERNELS = KernelCache()


def kernel_cache_stats() -> Dict[str, object]:
    """Hit/miss/byte counters of the process-wide kernel cache.

    ``by_backend`` breaks hits/misses/entries/bytes down per backend
    tier (``numpy64``/``numpy32``/``shared``) so mixed-tier traffic is
    observable from ``/stats``, ``/metrics`` and ``cache-stats``.
    """
    with _KERNELS._lock:
        return {
            "hits": _KERNELS.hits,
            "misses": _KERNELS.misses,
            "evictions": _KERNELS.evictions,
            "total_bytes": _KERNELS.total_bytes,
            "entries": len(_KERNELS._entries),
            "by_backend": {
                group: dict(g) for group, g in sorted(_KERNELS.groups.items())
            },
        }


def _build_diag(
    n: int, terms: Tuple[Term, ...], dtype=None
) -> np.ndarray:
    """The full ``2**n`` phase vector of a run of diagonal gates.

    Each term multiplies in exactly the factor the interpreter kernel
    would have applied (``np.where`` for rz, a masked scalar for the
    phase-on-ones family), so a single-term vector reproduces the
    interpreter bit-for-bit.  The vector is always *built* at the
    canonical complex128 and cast once for lower tiers — the float32
    kernel is the rounded exact kernel, not a float32 accumulation.
    """
    diag = np.ones(1 << n, dtype=canonical_complex)
    for name, qubits, params in terms:
        if name == "rz":
            lam = params[0]
            lo, hi = cmath.exp(-0.5j * lam), cmath.exp(0.5j * lam)
            diag *= np.where(_GLOBAL_BITS.mask_bit(n, qubits[0]), hi, lo)
            continue
        gate = _term_instruction(name, qubits, params).gate
        phase = phase_on_ones(gate)
        if phase is not None:
            mask = _GLOBAL_BITS.mask_bit(n, qubits[0]).copy()
            for q in qubits[1:]:
                mask &= _GLOBAL_BITS.mask_bit(n, q)
            diag[mask] *= phase
            continue
        # Generic diagonal gate (crz, rzz, ...): expand its diagonal.
        sub = np.diag(gate.matrix)
        idx = np.zeros(1 << n, dtype=np.intp)
        for pos, t in enumerate(qubits):
            idx |= ((np.arange(1 << n, dtype=np.intp) >> t) & 1) << pos
        diag *= sub[idx]
    if dtype is not None and np.dtype(dtype) != np.dtype(canonical_complex):
        diag = diag.astype(dtype)
    diag.setflags(write=False)
    return diag


def _build_ccx_perm(n: int, c1: int, c2: int, t: int):
    mask = _GLOBAL_BITS.mask_bit(n, c1) & _GLOBAL_BITS.mask_bit(n, c2)
    src = np.flatnonzero(mask & ~_GLOBAL_BITS.mask_bit(n, t))
    dst = src | (1 << t)
    src.setflags(write=False)
    dst.setflags(write=False)
    return src, dst


# ---------------------------------------------------------------------------
# Monomial algebra
# ---------------------------------------------------------------------------
# A monomial operator has exactly one nonzero entry per row:
# ``new[j] = ph[j] * old[src[j]]``.  Diagonal gates (src = identity) and
# the permutation family x/cx/swap/ccx (ph = 1) are both monomial, and
# monomials are closed under composition — so any noise-free run of
# them collapses to a single gather-and-multiply, however long.  The
# pair ``(src, ph)`` uses ``None`` for an identity component.

def _build_perm_indices(
    n: int, name: str, qubits: Tuple[int, ...]
) -> np.ndarray:
    """Index map of one permutation gate: ``new[j] = old[idx[j]]``.

    Every supported permutation is an involution, so the map equals its
    inverse and can be used directly for both directions.
    """
    idx = np.arange(1 << n, dtype=np.int64)
    if name == "x":
        idx ^= 1 << qubits[0]
    elif name == "cx":
        c, t = qubits
        idx ^= ((idx >> c) & 1) << t
    elif name == "swap":
        a, b = qubits
        d = ((idx >> a) ^ (idx >> b)) & 1
        idx ^= (d << a) | (d << b)
    elif name == "ccx":
        c1, c2, t = qubits
        idx ^= ((idx >> c1) & (idx >> c2) & 1) << t
    else:
        raise ValueError(f"not a permutation gate: {name!r}")
    out = idx.astype(np.int32) if n < 31 else idx
    out.setflags(write=False)
    return out


def _perm_indices(n: int, name: str, qubits: Tuple[int, ...]) -> np.ndarray:
    # Index maps are dtype-independent: one entry serves every tier.
    return _KERNELS.get(
        ("perm", n, name, qubits),
        lambda: _build_perm_indices(n, name, qubits),
    )


def _mono_compose(cur, op: "ProgramOp", n: int, dtype=None):
    """Compose ``op`` (applied after) onto the monomial ``cur``.

    Cached kernel arrays are never mutated: every step produces fresh
    arrays (or aliases a read-only cached one for the first factor).
    """
    src, ph = cur
    if isinstance(op, DiagonalOp):
        d = op.diag(n, dtype)
        return src, (d if ph is None else ph * d)
    t = _perm_indices(n, op.name, op.qubits)
    return (
        t if src is None else np.take(src, t),
        ph if ph is None else np.take(ph, t),
    )


def _compose_elems(cur, elems, n: int, dtype=None):
    for op in elems:
        cur = _mono_compose(cur, op, n, dtype)
    return cur


def _mono_apply(
    state: np.ndarray, mono, scratch: Optional[np.ndarray] = None
) -> None:
    """Apply a monomial ``(src, ph)`` to a ``(B, 2**n)`` batch in place.

    The gather runs row by row through :func:`np.take` — an order of
    magnitude faster than ``state[:, src]`` column fancy-indexing on a
    C-order batch — into ``scratch`` (allocated when not supplied, so
    hot callers should pass a reusable buffer).
    """
    src, ph = mono
    if src is None:
        if ph is not None:
            state *= ph
        return
    if scratch is None or scratch.shape != state.shape:
        scratch = np.empty_like(state)
    for b in range(state.shape[0]):
        np.take(state[b], src, out=scratch[b])
    if ph is None:
        state[...] = scratch
    else:
        np.multiply(scratch, ph, out=state)


def _mono_apply_rows(
    buf: np.ndarray,
    rows: Iterable[int],
    mono,
    scratch: Optional[np.ndarray] = None,
) -> None:
    """Apply a monomial to selected rows of ``buf`` in place.

    ``rows`` need not be contiguous; each row is gathered independently
    (``buf[r]`` is a view), so this is the cheap path when only a few
    trajectories of a batch need advancing.
    """
    src, ph = mono
    if src is None:
        if ph is not None:
            for r in rows:
                buf[r] *= ph
        return
    if scratch is None:
        scratch = np.empty(buf.shape[1], dtype=buf.dtype)
    for r in rows:
        row = buf[r]
        np.take(row, src, out=scratch)
        if ph is None:
            row[...] = scratch
        else:
            np.multiply(scratch, ph, out=row)


# ---------------------------------------------------------------------------
# Program ops
# ---------------------------------------------------------------------------

class ProgramOp:
    """Base class: a single lowered operation of a compiled program."""

    kind = "unitary"
    __slots__ = ()

    def apply(self, state: np.ndarray, n: int) -> None:
        """In-place application to a ``(B, 2**n)`` batch."""
        raise NotImplementedError

    def term_list(self) -> Tuple[Term, ...]:
        """The gate descriptors this op lowers (for decompilation)."""
        return ()


class DiagonalOp(ProgramOp):
    """A fused run of diagonal gates: one phase-vector multiply.

    Single-term ops (a lone ``rz``/``cp``/... between two noise sites —
    the common case at paper noise, where every gate carries a channel)
    replay the interpreter kernel directly instead of materialising and
    caching a ``2**n`` vector per gate; only genuinely fused runs pay
    for (and amortise) a cached phase vector.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[Term]) -> None:
        self.terms = tuple(terms)

    def diag(self, n: int, dtype=None) -> np.ndarray:
        tag = dtype_tag(canonical_complex if dtype is None else dtype)
        if len(self.terms) == 1:
            return _build_diag(n, self.terms, dtype)
        return _KERNELS.get(
            ("diag", n, self.terms, tag),
            lambda: _build_diag(n, self.terms, dtype),
            group=kernel_group(tag),
        )

    def apply(self, state: np.ndarray, n: int) -> None:
        if len(self.terms) == 1:
            name, qubits, params = self.terms[0]
            if name == "rz":
                lam = params[0]
                lo, hi = cmath.exp(-0.5j * lam), cmath.exp(0.5j * lam)
                state *= np.where(
                    _GLOBAL_BITS.mask_bit(n, qubits[0]), hi, lo
                )
                return
            phase = phase_on_ones(_term_instruction(*self.terms[0]).gate)
            if phase is not None:
                _apply_phase_on_mask(state, phase, qubits, n)
                return
        state *= self.diag(n, state.dtype)

    def term_list(self) -> Tuple[Term, ...]:
        return self.terms

    def __repr__(self) -> str:
        return f"DiagonalOp({len(self.terms)} terms)"


class PermutationOp(ProgramOp):
    """``x``/``cx``/``swap``/``ccx`` as pure index permutations."""

    __slots__ = ("name", "qubits")

    def __init__(self, name: str, qubits: Tuple[int, ...]) -> None:
        self.name = name
        self.qubits = qubits

    def apply(self, state: np.ndarray, n: int) -> None:
        q = self.qubits
        if self.name == "x":
            from .ops import _apply_x
            _apply_x(state, q[0], n)
        elif self.name == "cx":
            from .ops import _apply_cx
            _apply_cx(state, q[0], q[1], n)
        elif self.name == "swap":
            from .ops import _apply_swap
            _apply_swap(state, q[0], q[1], n)
        else:  # ccx with a cached index pair
            src, dst = _KERNELS.get(
                ("ccx", n) + q, lambda: _build_ccx_perm(n, *q)
            )
            tmp = state[:, src].copy()
            state[:, src] = state[:, dst]
            state[:, dst] = tmp

    def term_list(self) -> Tuple[Term, ...]:
        return ((self.name, self.qubits, ()),)

    def __repr__(self) -> str:
        return f"PermutationOp({self.name} {list(self.qubits)})"


class DenseOp(ProgramOp):
    """A dense 1q gate applied as a broadcast (2,2) matmul.

    Beats the four-add split kernel once the inner stride ``2**q`` is
    large enough for BLAS to win (measured crossover around ``q = 4``);
    lowering only emits this op above the crossover.
    """

    __slots__ = ("term",)

    def __init__(self, term: Term) -> None:
        self.term = term

    def apply(self, state: np.ndarray, n: int) -> None:
        name, qubits, params = self.term
        U = _term_instruction(name, qubits, params).gate.matrix
        q = qubits[0]
        B = state.shape[0]
        s = state.reshape(B << (n - 1 - q), 2, 1 << q)
        s[...] = np.matmul(U, s)

    def term_list(self) -> Tuple[Term, ...]:
        return (self.term,)

    def __repr__(self) -> str:
        return f"DenseOp({self.term[0]} q{list(self.term[1])})"


class GateOp(ProgramOp):
    """Fallback: replay the interpreter kernel for one gate exactly."""

    __slots__ = ("term",)

    def __init__(self, term: Term) -> None:
        self.term = term

    def apply(self, state: np.ndarray, n: int) -> None:
        instr = _term_instruction(*self.term)
        out = apply_instruction(state, instr, n)
        if out is not state:
            # The general k>=3 dense path returns a fresh array; copy
            # back so slice-aliased callers keep in-place semantics.
            state[...] = out

    def term_list(self) -> Tuple[Term, ...]:
        return (self.term,)

    def __repr__(self) -> str:
        return f"GateOp({self.term[0]} q{list(self.term[1])})"


class RawGateOp(ProgramOp):
    """A gate outside the builder registry: carries its Instruction.

    Rare (custom-matrix gates only); not shareable across processes the
    way descriptor ops are, but still executes through the interpreter
    kernel.
    """

    __slots__ = ("instr",)

    def __init__(self, instr: Instruction) -> None:
        self.instr = instr

    def apply(self, state: np.ndarray, n: int) -> None:
        out = apply_instruction(state, self.instr, n)
        if out is not state:
            state[...] = out

    def term_list(self) -> Tuple[Term, ...]:
        return ()

    def __repr__(self) -> str:
        return f"RawGateOp({self.instr!r})"


class NoiseOp(ProgramOp):
    """An error-channel site with the channel resolved at bind time.

    For Pauli channels the conditioned table used by clean-shot
    splitting is precomputed: ``labels``/``cond`` are the non-identity
    strings and their renormalised probabilities, ``e`` the total
    non-identity weight.
    """

    kind = "noise"
    __slots__ = ("qubits", "error", "labels", "cond", "e")

    def __init__(self, qubits: Tuple[int, ...], error: QuantumError) -> None:
        self.qubits = qubits
        self.error = error
        if isinstance(error, PauliError):
            nontrivial = [
                (p, pr)
                for p, pr in zip(error.paulis, error.probs)
                if set(p) != {"I"} and pr > 0
            ]
            self.e = float(sum(pr for _, pr in nontrivial))
            self.labels = [p for p, _ in nontrivial]
            self.cond = (
                np.array([pr for _, pr in nontrivial]) / self.e
                if self.e > 0
                else np.empty(0)
            )
        else:
            self.labels, self.cond, self.e = None, None, None

    @property
    def is_pauli(self) -> bool:
        return isinstance(self.error, PauliError)

    def __repr__(self) -> str:
        return f"NoiseOp({self.error!r} on q{list(self.qubits)})"


class ResetSiteOp(ProgramOp):
    """A mid-circuit ``reset`` instruction (engines own the semantics)."""

    kind = "reset"
    __slots__ = ("qubit",)

    def __init__(self, qubit: int) -> None:
        self.qubit = qubit

    def __repr__(self) -> str:
        return f"ResetSiteOp(q{self.qubit})"


class MeasureSiteOp(ProgramOp):
    """A ``measure`` instruction; terminal sampling is engine-owned."""

    kind = "measure"
    __slots__ = ("qubits", "clbits")

    def __init__(self, qubits: Tuple[int, ...], clbits: Tuple[int, ...]) -> None:
        self.qubits = qubits
        self.clbits = clbits

    def __repr__(self) -> str:
        return f"MeasureSiteOp(q{list(self.qubits)})"


_MONOMIAL_OP_TYPES = (DiagonalOp, PermutationOp)


class _MonoSegment:
    """A maximal run of monomial ops with its interior noise sites.

    ``elems`` are the run's Diagonal/Permutation ops in order; ``sites``
    are ``(elem_pos, noise_op, site_ordinal)`` markers, where
    ``elem_pos`` is the number of elems preceding the site and
    ``site_ordinal`` indexes :meth:`CompiledProgram.pauli_sites`.  When
    no site fires, the whole run executes as one cached
    gather-and-multiply (:meth:`full`); a firing site only forces the
    walker to materialise the partial product up to that point.
    """

    __slots__ = ("elems", "sites", "key")

    def __init__(self, elems, sites, n: int) -> None:
        self.elems = elems
        self.sites = sites
        self.key = ("mono", n) + tuple(
            e.terms if isinstance(e, DiagonalOp) else (e.name, e.qubits)
            for e in elems
        )

    def full(self, n: int, dtype=None):
        """The run's composed monomial ``(src, ph)`` (kernel-cached).

        ``dtype`` selects the precision tier of the phase component;
        keys carry the dtype tag so tiers never share (or pollute)
        entries.
        """
        tag = dtype_tag(canonical_complex if dtype is None else dtype)
        return _KERNELS.get(
            self.key + (tag,),
            lambda: _compose_elems((None, None), self.elems, n, dtype),
            group=kernel_group(tag),
        )

    def partial(self, n: int, start: int, end: int, dtype=None):
        """The composed monomial of ``elems[start:end]`` (kernel-cached).

        The batched scheduler walks a firing row piecewise between its
        own fire positions; caching each piece by ``(key, start, end)``
        shares the composition across rows, rounds and fused tasks.
        ``partial(n, 0, len(elems))`` is exactly :meth:`full` (same
        cache entry), so event-free spans pay nothing extra.
        """
        if start == 0 and end == len(self.elems):
            return self.full(n, dtype)
        tag = dtype_tag(canonical_complex if dtype is None else dtype)
        return _KERNELS.get(
            (self.key, start, end, tag),
            lambda: _compose_elems(
                (None, None), self.elems[start:end], n, dtype
            ),
            group=kernel_group(tag),
        )

    def __repr__(self) -> str:
        return (
            f"_MonoSegment({len(self.elems)} elems, "
            f"{len(self.sites)} sites)"
        )


# ---------------------------------------------------------------------------
# The compiled program
# ---------------------------------------------------------------------------

class CompiledProgram:
    """A lowered, noise-bound, engine-agnostic execution program.

    Attributes
    ----------
    ops:
        The flat op tuple, in circuit order.
    readout:
        ``((qubit, p01, p10), ...)`` resolved readout-error table.
    pauli_only:
        True when every noise site is a Pauli channel and the program
        has no mid-circuit reset — the precondition for the trajectory
        engine's clean-shot split.
    fingerprint:
        Short content hash of (circuit, noise, optimize) — stable across
        processes, suitable for checkpoint payloads.
    """

    #: slots that round-trip through pickle; ``_stream`` is a derived
    #: per-process execution plan and is rebuilt lazily after unpickling.
    _PICKLE_SLOTS = (
        "num_qubits",
        "ops",
        "readout",
        "pauli_only",
        "fingerprint",
        "circuit_fingerprint",
        "noise_fingerprint",
        "optimized",
    )

    __slots__ = _PICKLE_SLOTS + ("_stream", "_fusion_key")

    def __init__(
        self,
        num_qubits: int,
        ops: Tuple[ProgramOp, ...],
        readout: Tuple[Tuple[int, float, float], ...],
        fingerprint: str,
        circuit_fp: str,
        noise_fp: str,
        optimized: bool,
    ) -> None:
        self.num_qubits = num_qubits
        self.ops = ops
        self.readout = readout
        self.fingerprint = fingerprint
        self.circuit_fingerprint = circuit_fp
        self.noise_fingerprint = noise_fp
        self.optimized = optimized
        self.pauli_only = all(
            op.is_pauli for op in ops if op.kind == "noise"
        ) and not any(op.kind == "reset" for op in ops)
        self._stream = None
        self._fusion_key = None

    # -- pickling (slots class) -----------------------------------------
    def __getstate__(self):
        return tuple(getattr(self, s) for s in self._PICKLE_SLOTS)

    def __setstate__(self, state):
        for s, v in zip(self._PICKLE_SLOTS, state):
            object.__setattr__(self, s, v)
        self._stream = None
        self._fusion_key = None

    # -- introspection ---------------------------------------------------
    @property
    def num_noise_sites(self) -> int:
        return sum(1 for op in self.ops if op.kind == "noise")

    @property
    def fusion_key(self) -> tuple:
        """The batching compatibility key of this program.

        Two programs with equal fusion keys lower from the same circuit
        skeleton and share an identical :meth:`exec_stream` layout —
        same segment boundaries, same Pauli-site ordinals — differing
        only in channel weights.  The batched trajectory scheduler may
        therefore pack their rows into one state buffer: every shared
        unitary/monomial kernel applies to all rows at once, while
        per-row Pauli fires are drawn from each task's own channel
        tables.  Rate-only sweeps (the paper's figures) satisfy this by
        construction; a 1q-axis and a 2q-axis program of the same
        circuit do *not* (different sites carry weight).
        """
        key = self._fusion_key
        if key is None:
            layout = tuple(
                (op.qubits, op.is_pauli, bool(op.e))
                for op in self.ops
                if op.kind == "noise"
            )
            key = (
                "fuse",
                self.circuit_fingerprint,
                self.optimized,
                self.num_qubits,
                layout,
                self.pauli_only,
            )
            self._fusion_key = key
        return key

    def pauli_sites(self) -> List[Tuple[int, NoiseOp]]:
        """(op index, NoiseOp) for every Pauli noise site with weight."""
        return [
            (i, op)
            for i, op in enumerate(self.ops)
            if op.kind == "noise" and op.e
        ]

    def exec_stream(self) -> List[tuple]:
        """The segmented execution plan: ``("seg", _MonoSegment)`` runs
        interleaved with ``("op", op)`` boundary ops.

        Monomial runs (diagonal + permutation gates) are grouped with
        their interior noise sites so a trajectory walker can execute a
        fire-free run as one composed gather; dense gates, resets and
        any other non-monomial op are boundaries.  Zero-weight noise
        sites and terminal measure markers are dropped — neither can
        affect the state walk.  Built lazily, cached per process.
        """
        stream = self._stream
        if stream is not None:
            return stream
        items: List[tuple] = []
        elems: List[ProgramOp] = []
        sites: List[tuple] = []
        ordinal = 0

        def flush() -> None:
            nonlocal elems, sites
            if elems or sites:
                items.append(
                    ("seg",
                     _MonoSegment(tuple(elems), tuple(sites),
                                  self.num_qubits))
                )
            elems, sites = [], []

        for op in self.ops:
            if isinstance(op, _MONOMIAL_OP_TYPES):
                elems.append(op)
            elif op.kind == "noise":
                if op.is_pauli:
                    if op.e:
                        sites.append((len(elems), op, ordinal))
                        ordinal += 1
                else:
                    # Non-Pauli channels can't be a segment site (their
                    # action isn't a sparse per-row fire) — keep them in
                    # the stream as explicit boundary ops.
                    flush()
                    items.append(("op", op))
            elif op.kind == "measure":
                continue
            else:
                flush()
                items.append(("op", op))
        flush()
        self._stream = items
        return items

    def decompile(self) -> QuantumCircuit:
        """Rebuild a unitary-only circuit from the lowered gate terms.

        Fused runs expand back into their member gates, so the result is
        directly comparable to the source circuit with
        :func:`repro.lint.check_equivalence` (noise sites, resets and
        measurements are dropped).
        """
        out = QuantumCircuit(self.num_qubits, name="decompiled")
        for op in self.ops:
            if isinstance(op, RawGateOp):
                out._instructions.append(op.instr)
                continue
            for term in op.term_list():
                out._instructions.append(_term_instruction(*term))
        return out

    def __repr__(self) -> str:
        return (
            f"<CompiledProgram {self.num_qubits}q, {len(self.ops)} ops, "
            f"{self.num_noise_sites} noise sites, fp={self.fingerprint}>"
        )


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

@dataclass
class _NoiseSite:
    """A rate-independent noise placeholder in a skeleton."""

    slot: tuple
    qubits: Tuple[int, ...]


class _Skeleton:
    """Rate-independent lowering of one circuit: ops + noise slots."""

    __slots__ = ("num_qubits", "items", "circuit_fp", "optimized", "_bound")

    #: max bound programs retained per skeleton (per structure key the
    #: binds of a sweep's distinct rates; far below this in practice).
    BIND_CAP = 128

    def __init__(self, num_qubits, items, circuit_fp, optimized) -> None:
        self.num_qubits = num_qubits
        self.items = items  # tuple of ProgramOp | _NoiseSite
        self.circuit_fp = circuit_fp
        self.optimized = optimized
        self._bound: Dict[str, CompiledProgram] = {}


class CompileStats:
    """Counters for the two cache levels (sweep-wide, process-local)."""

    __slots__ = ("lowerings", "lower_hits", "binds", "bind_hits", "_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.lowerings = 0
            self.lower_hits = 0
            self.binds = 0
            self.bind_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "lowerings": self.lowerings,
            "lower_hits": self.lower_hits,
            "binds": self.binds,
            "bind_hits": self.bind_hits,
        }

    def __repr__(self) -> str:
        return f"CompileStats({self.as_dict()})"


_STATS = CompileStats()
_LOWER_CACHE: "weakref.WeakKeyDictionary[QuantumCircuit, Dict[tuple, _Skeleton]]" = (
    weakref.WeakKeyDictionary()
)
_FP_CACHE: "weakref.WeakKeyDictionary[QuantumCircuit, str]" = (
    weakref.WeakKeyDictionary()
)
#: Guards the compile caches (_LOWER_CACHE/_FP_CACHE/skeleton binds) and
#: the _STATS counters.  Reentrant: compile_circuit -> _lower ->
#: circuit_fingerprint all touch cached state.  Holding it across the
#: lowering serialises compilation, which is deliberate — lowering is
#: rare (cache-keyed per structure) and a duplicate concurrent lowering
#: would waste far more than the lock costs.
_COMPILE_LOCK = threading.RLock()


def compile_cache_stats() -> CompileStats:
    """The process-wide compile-cache counters."""
    return _STATS


def reset_compile_caches() -> None:
    """Drop every cached skeleton/bind/kernel and zero the counters."""
    with _COMPILE_LOCK:
        _LOWER_CACHE.clear()
        _FP_CACHE.clear()
        _KERNELS.clear()
        _STATS.reset()


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Short content hash of a circuit's instruction list."""
    fp = _FP_CACHE.get(circuit)
    if fp is None:
        h = hashlib.sha256()
        h.update(str(circuit.num_qubits).encode())
        for instr in circuit:
            h.update(
                f"{instr.gate.name}|{instr.qubits}|{instr.gate.params}"
                f"|{instr.clbits}".encode()
            )
        fp = h.hexdigest()[:16]
        with _COMPILE_LOCK:
            try:
                _FP_CACHE[circuit] = fp
            except TypeError:  # unhashable/non-weakrefable circuit subclass
                pass
    return fp


_DENSE_MATMUL_MIN_QUBIT = 6  # inner stride 64: measured BLAS crossover


def _lower(
    circuit: QuantumCircuit, noise: NoiseModel, optimize: bool
) -> _Skeleton:
    """Lower a circuit against a noise *structure* (rates ignored)."""
    n = circuit.num_qubits
    items: List[object] = []
    pending: List[Term] = []

    def flush() -> None:
        if pending:
            items.append(DiagonalOp(tuple(pending)))
            pending.clear()

    for instr in circuit:
        gate = instr.gate
        name = gate.name
        if name == "barrier":
            continue
        if name == "measure":
            flush()
            items.append(MeasureSiteOp(instr.qubits, instr.clbits))
            continue
        if name == "reset":
            flush()
            items.append(ResetSiteOp(instr.qubits[0]))
            continue

        # Unitary lowering.  ``id`` emits no op (identity) but still
        # carries noise below — the paper's 1q error axis includes it.
        if name != "id":
            if name not in G.GATE_BUILDERS:
                flush()
                items.append(RawGateOp(instr))
            elif gate.is_unitary and is_diagonal_gate(gate):
                pending.append(_term(instr))
                if not optimize:
                    flush()
            elif name in ("x", "cx", "swap", "ccx"):
                flush()
                items.append(PermutationOp(name, instr.qubits))
            elif (
                optimize
                and gate.num_qubits == 1
                and gate.is_unitary
                and instr.qubits[0] >= _DENSE_MATMUL_MIN_QUBIT
            ):
                flush()
                items.append(DenseOp(_term(instr)))
            else:
                flush()
                items.append(GateOp(_term(instr)))

        # Noise sites: expand 1q channels onto each qubit of wider
        # gates here (same order as the interpreting engines) so the
        # bound program needs no arity logic in the hot loop.
        sites = noise.errors_for(name, instr.qubits)
        if sites:
            flush()
            for slot, err in sites:
                if err.num_qubits == 1 and len(instr.qubits) > 1:
                    for q in instr.qubits:
                        items.append(_NoiseSite(slot, (q,)))
                elif err.num_qubits == len(instr.qubits):
                    items.append(_NoiseSite(slot, instr.qubits))
                else:
                    raise ValueError(
                        f"error arity {err.num_qubits} does not match "
                        f"gate {name!r} on {len(instr.qubits)} qubits"
                    )
    flush()
    return _Skeleton(n, tuple(items), circuit_fingerprint(circuit), optimize)


def _bind(skeleton: _Skeleton, noise: NoiseModel) -> CompiledProgram:
    """Resolve a skeleton's noise slots against a concrete model."""
    ops: List[ProgramOp] = []
    for item in skeleton.items:
        if isinstance(item, _NoiseSite):
            ops.append(NoiseOp(item.qubits, noise.error_by_slot(item.slot)))
        else:
            ops.append(item)
    readout = []
    for q in range(skeleton.num_qubits):
        ro = noise.readout_error(q)
        if ro is not None:
            readout.append((q, ro.p01, ro.p10))
    noise_fp = noise.fingerprint()
    fp = hashlib.sha256(
        f"{skeleton.circuit_fp}|{noise_fp}|{skeleton.optimized}".encode()
    ).hexdigest()[:16]
    return CompiledProgram(
        skeleton.num_qubits,
        tuple(ops),
        tuple(readout),
        fp,
        skeleton.circuit_fp,
        noise_fp,
        skeleton.optimized,
    )


def compile_circuit(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    optimize: bool = True,
) -> CompiledProgram:
    """Lower ``circuit`` + ``noise_model`` into a :class:`CompiledProgram`.

    ``optimize=False`` disables diagonal-run fusion and the dense-matmul
    substitution, producing a program whose execution replays the
    interpreter kernels bit-for-bit (used by the parity tests).

    Caching: the expensive lowering is shared by every model with the
    same :meth:`~repro.noise.model.NoiseModel.structure_key`; the cheap
    bind is shared by identical fingerprints.  A rate-only sweep over
    one circuit therefore performs exactly one lowering.
    """
    noise = noise_model or NoiseModel.ideal()
    with _COMPILE_LOCK:
        per_circuit = _LOWER_CACHE.get(circuit)
        if per_circuit is None:
            per_circuit = {}
            try:
                _LOWER_CACHE[circuit] = per_circuit
            except TypeError:
                pass
        key = (noise.structure_key(), bool(optimize))
        skeleton = per_circuit.get(key)
        if skeleton is None:
            _STATS.lowerings += 1
            skeleton = _lower(circuit, noise, bool(optimize))
            per_circuit[key] = skeleton
        else:
            _STATS.lower_hits += 1

        noise_fp = noise.fingerprint()
        program = skeleton._bound.get(noise_fp)
        if program is None:
            _STATS.binds += 1
            program = _bind(skeleton, noise)
            if len(skeleton._bound) >= _Skeleton.BIND_CAP:
                skeleton._bound.pop(next(iter(skeleton._bound)))
            skeleton._bound[noise_fp] = program
        else:
            _STATS.bind_hits += 1
        return program


def as_program(
    target: Union[QuantumCircuit, CompiledProgram],
    noise_model: Optional[NoiseModel] = None,
    optimize: bool = True,
) -> CompiledProgram:
    """Internal shim: accept either a circuit or a precompiled program."""
    if isinstance(target, CompiledProgram):
        return target
    return compile_circuit(target, noise_model, optimize=optimize)
