"""PTM-compiled exact-noise engine: superoperators in the Pauli basis.

The density engine is exact but pays for generality: every gate is two
batched vector passes over a ``2**n x 2**n`` complex operator, and every
Pauli channel replays its non-identity labels as unitary passes.  In the
(normalised) Pauli basis the same CPTP evolution is a sequence of small
*real* linear maps — the Pauli Transfer Matrix (PTM) picture used by
quantumsim-style simulators:

* the state is the real coefficient vector ``c_p = Tr[sigma_p rho]``
  over the product basis ``sigma_p = P_p / sqrt(2)`` per qubit —
  ``4**n`` reals instead of ``4**n`` complex entries;
* a ``k``-qubit unitary becomes the real ``4**k x 4**k`` matrix
  ``R[a,b] = Tr[P_a U P_b U^dag] / 2**k`` applied along the gate's
  axes;
* a Pauli channel is *diagonal*: ``D[b] = sum_j p_j chi(j, b)`` with
  ``chi`` the commutation sign of label ``j`` against basis string
  ``b`` — one broadcast multiply where the density engine pays a full
  copy-and-conjugate pass per label;
* general Kraus channels and resets lower to dense PTMs the same way
  unitaries do.

Compilation mirrors :mod:`repro.sim.program`'s two-level discipline:
gate PTMs depend only on (gate, params, arity) and live in the shared
:class:`~repro.sim.program.KernelCache` keyed with the engine's dtype
tag, so a rate sweep builds each PTM exactly once ("bind once, re-rate
cheap"); the per-program *plan* — the ordered step list with the
rate-dependent channel diagonals resolved — is cached per program
fingerprint with hit/miss counters surfaced via :func:`ptm_cache_stats`.

Precision follows the active :mod:`~repro.sim.backend` tier: the state
is ``float64`` under ``numpy64`` and ``float32`` under ``numpy32``
(kernels are built at float64 and cast once, like every other kernel).
"""

from __future__ import annotations

import threading
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.channels import PauliError, QuantumError
from ..noise.model import NoiseModel
from ..noise.pauli import PAULI_CHARS, PAULI_MATRICES, pauli_matrix
from ..runtime import sanitizer
from ..runtime.errors import width_limit_error
from ..runtime.health import NumericalHealthError, check_finite, norm_tolerance
from .backend import (
    as_complex,
    dtype_tag,
    kernel_group,
    resolve_complex_dtype,
)
from .program import (
    CompiledProgram,
    RawGateOp,
    _KERNELS,
    _term_instruction,
    as_program,
)
from .result import Distribution

__all__ = ["PTMEngine", "ptm_cache_stats", "reset_ptm_cache"]

_SQRT2 = float(np.sqrt(2.0))

#: Per-qubit commutation signs: ``_CHI[a][b] = +1`` when Paulis ``a``
#: and ``b`` commute (either is I, or they are equal), else ``-1``.
_CHI = {
    "I": np.array([1.0, 1.0, 1.0, 1.0]),
    "X": np.array([1.0, 1.0, -1.0, -1.0]),
    "Y": np.array([1.0, -1.0, 1.0, -1.0]),
    "Z": np.array([1.0, -1.0, -1.0, 1.0]),
}


def _basis_labels(k: int) -> List[str]:
    """Pauli strings in flat-index order: digit ``i`` (weight ``4**i``)
    is the Pauli on gate argument ``i`` — the same little-endian
    convention as :func:`repro.noise.pauli.pauli_matrix`."""
    return [
        "".join(PAULI_CHARS[(a >> (2 * i)) & 3] for i in range(k))
        for a in range(1 << (2 * k))
    ]


def _build_unitary_ptm(U: np.ndarray, k: int) -> np.ndarray:
    """``R[a,b] = Tr[P_a U P_b U^dag] / 2**k`` (real for any unitary)."""
    P = np.stack([pauli_matrix(lbl) for lbl in _basis_labels(k)])
    V = np.einsum("ij,bjk,lk->bil", U, P, U.conj())
    R = np.einsum("aij,bji->ab", P, V).real / float(1 << k)
    return R


def _build_kraus_ptm(kraus: Sequence[np.ndarray], k: int) -> np.ndarray:
    """PTM of a general CPTP map from its Kraus operators."""
    P = np.stack([pauli_matrix(lbl) for lbl in _basis_labels(k)])
    R = np.zeros((1 << (2 * k), 1 << (2 * k)))
    for K in kraus:
        V = np.einsum("ij,bjk,lk->bil", K, P, K.conj())
        R += np.einsum("aij,bji->ab", P, V).real
    return R / float(1 << k)


def _pauli_channel_diag(err: PauliError) -> np.ndarray:
    """The diagonal PTM of a Pauli channel over its argument qubits."""
    k = len(err.paulis[0])
    D = np.zeros(1 << (2 * k))
    for label, pr in zip(err.paulis, err.probs):
        if pr <= 0:
            continue
        # kron builds most-significant digit first = argument k-1.
        D += pr * reduce(np.kron, [_CHI[ch] for ch in reversed(label)])
    return D


def _cast(R: np.ndarray, real_dtype) -> np.ndarray:
    out = R.astype(real_dtype) if R.dtype != np.dtype(real_dtype) else R
    out.setflags(write=False)
    return out


# ---------------------------------------------------------------------------
# Plan compilation (bind once per program, PTMs shared across rates)
# ---------------------------------------------------------------------------

#: One lowered step: ("mat", R, qubits) dense PTM along the gate axes,
#: or ("diag", D, qubits) broadcast multiply for a Pauli channel.
_Step = Tuple[str, np.ndarray, Tuple[int, ...]]

_PLAN_CAP = 128
_PLAN_LOCK = threading.Lock()
_PLANS: Dict[tuple, List[_Step]] = {}
_PLAN_STATS = {"binds": 0, "bind_hits": 0}


def ptm_cache_stats() -> Dict[str, int]:
    """Bound-plan cache counters (``binds`` = plans compiled, hits =
    re-served from the fingerprint-keyed cache)."""
    with _PLAN_LOCK:
        return {
            "plans": len(_PLANS),
            "binds": _PLAN_STATS["binds"],
            "bind_hits": _PLAN_STATS["bind_hits"],
        }


def reset_ptm_cache() -> None:
    """Drop cached plans and zero the counters (tests/benchmarks)."""
    with _PLAN_LOCK:
        _PLANS.clear()
        _PLAN_STATS["binds"] = 0
        _PLAN_STATS["bind_hits"] = 0


def _gate_ptm(term, real_dtype, tag: str) -> np.ndarray:
    """Kernel-cached PTM of one gate term (rate-independent, so a rate
    sweep reuses every entry across binds — the "bind once" payoff)."""
    name, qubits, params = term
    k = len(qubits)
    return _KERNELS.get(
        ("ptm-gate", name, params, k, tag),
        lambda: _cast(
            _build_unitary_ptm(
                _term_instruction(name, qubits, params).gate.matrix, k
            ),
            real_dtype,
        ),
        group=kernel_group(tag),
    )


def _channel_ptm(err: QuantumError, real_dtype, tag: str) -> np.ndarray:
    """Kernel-cached PTM of a non-Pauli channel, keyed by content."""
    k = err.num_qubits
    return _KERNELS.get(
        ("ptm-chan", err.fingerprint(), k, tag),
        lambda: _cast(_build_kraus_ptm(err.kraus_operators(), k), real_dtype),
        group=kernel_group(tag),
    )


def _reset_ptm(real_dtype, tag: str) -> np.ndarray:
    k0 = as_complex([[1, 0], [0, 0]])
    k1 = as_complex([[0, 1], [0, 0]])
    return _KERNELS.get(
        ("ptm-reset", tag),
        lambda: _cast(_build_kraus_ptm([k0, k1], 1), real_dtype),
        group=kernel_group(tag),
    )


def _build_plan(
    program: CompiledProgram, real_dtype, tag: str
) -> List[_Step]:
    steps: List[_Step] = []
    for op in program.ops:
        kind = op.kind
        if kind == "unitary":
            if isinstance(op, RawGateOp):
                k = len(op.instr.qubits)
                steps.append((
                    "mat",
                    _cast(
                        _build_unitary_ptm(op.instr.gate.matrix, k),
                        real_dtype,
                    ),
                    tuple(op.instr.qubits),
                ))
                continue
            # Fused diagonal runs expand back into their member gates:
            # a run may span the whole register, and a 4**n PTM would
            # defeat the point.  Per-term PTMs stay k <= 3.
            for term in op.term_list():
                steps.append((
                    "mat", _gate_ptm(term, real_dtype, tag), term[1]
                ))
        elif kind == "noise":
            if isinstance(op.error, PauliError):
                if op.e:
                    steps.append((
                        "diag",
                        _pauli_channel_diag(op.error).astype(real_dtype),
                        op.qubits,
                    ))
            else:
                steps.append((
                    "mat",
                    _channel_ptm(op.error, real_dtype, tag),
                    op.qubits,
                ))
        elif kind == "reset":
            steps.append((
                "mat", _reset_ptm(real_dtype, tag), (op.qubit,)
            ))
        # measure sites: terminal sampling is owned by distribution().
    return steps


def _plan_for(
    program: CompiledProgram, real_dtype, tag: str
) -> List[_Step]:
    key = (program.fingerprint, tag)
    with _PLAN_LOCK:
        plan = _PLANS.get(key)
        if plan is not None:
            _PLAN_STATS["bind_hits"] += 1
            del _PLANS[key]
            _PLANS[key] = plan  # refresh LRU recency
            return plan
    # Build outside the lock: gate-PTM construction can be slow and the
    # kernel cache has its own lock.  A concurrent duplicate build is
    # wasteful but correct (last writer wins).
    plan = _build_plan(program, real_dtype, tag)
    with _PLAN_LOCK:
        _PLAN_STATS["binds"] += 1
        while len(_PLANS) >= _PLAN_CAP:
            _PLANS.pop(next(iter(_PLANS)))
        _PLANS[key] = plan
    return plan


# ---------------------------------------------------------------------------
# State construction / step application
# ---------------------------------------------------------------------------

def _zero_state_coeffs(n: int, real_dtype) -> np.ndarray:
    """Pauli coefficients of ``|0...0><0...0|`` as a ``(4,)*n`` tensor
    (axis ``a`` holds qubit ``n-1-a``, matching little-endian flats)."""
    per_qubit = np.array([1.0, 0.0, 0.0, 1.0]) / _SQRT2
    vec = reduce(np.kron, [per_qubit] * n) if n > 1 else per_qubit
    return vec.astype(real_dtype).reshape((4,) * n)


def _coeffs_from_statevector(
    vec: np.ndarray, n: int, real_dtype
) -> np.ndarray:
    """Pauli coefficients of ``|v><v|`` via per-qubit contraction."""
    v = as_complex(vec).reshape(-1)
    if v.shape[0] != (1 << n):
        raise ValueError("initial state has wrong dimension")
    rho = np.outer(v, v.conj())  # rho[c, r] = <c|rho|r>
    t = rho.reshape((2,) * (2 * n))
    # Interleave (row, col) digits per qubit, fuse each pair into one
    # axis of size 4 with index 2*c + r.
    t = np.transpose(t, [x for a in range(n) for x in (a, n + a)])
    t = np.ascontiguousarray(t).reshape((4,) * n)
    # K4[p, 2c+r] = sigma_p[r, c]: contract each axis to its coefficient.
    K4 = np.stack(
        [PAULI_MATRICES[ch].T.reshape(-1) for ch in PAULI_CHARS]
    ) / _SQRT2
    for a in range(n):
        t = np.moveaxis(np.tensordot(K4, t, axes=([1], [a])), 0, a)
    return np.ascontiguousarray(t.real).astype(real_dtype, copy=False)


def _apply_mat(
    state_t: np.ndarray, R: np.ndarray, qubits: Tuple[int, ...], n: int
) -> np.ndarray:
    """Apply a ``4**k`` PTM along the axes of ``qubits`` (argument
    ``i`` = flat digit of weight ``4**i``, axis ``n-1-q`` = qubit q)."""
    k = len(qubits)
    src = [n - 1 - qubits[i] for i in reversed(range(k))]
    moved = np.moveaxis(state_t, src, range(k))
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(1 << (2 * k), -1)
    out = (R @ flat).reshape(shape)
    return np.moveaxis(out, range(k), src)


def _apply_diag(
    state_t: np.ndarray, D: np.ndarray, qubits: Tuple[int, ...], n: int
) -> None:
    """In-place broadcast multiply of a diagonal channel PTM."""
    k = len(qubits)
    src = [n - 1 - qubits[i] for i in reversed(range(k))]
    moved = np.moveaxis(state_t, src, range(k))
    moved *= D.reshape((4,) * k + (1,) * (n - k))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class PTMEngine:
    """Exact noisy evolution of the Pauli-coefficient vector.

    Same contract as :class:`~repro.sim.density.DensityMatrixEngine`
    (exact CPTP evolution, readout folded into :meth:`distribution`),
    but the superoperators are pre-compiled once per (circuit,
    noise-structure) and shared across rates — the fast exact lane for
    the cross-validation sweeps.
    """

    #: 4**n reals; one qubit below the density engine's complex cap.
    max_qubits = 12

    def __init__(self, dtype=None) -> None:
        self.dtype = resolve_complex_dtype(dtype)
        self.tag = dtype_tag(self.dtype)
        self.real_dtype = np.float32 if self.tag == "c64" else np.float64

    def run(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        noise_model: Optional[NoiseModel] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The final Pauli coefficient vector (``4**n`` reals).

        ``circuit`` compiles through :func:`repro.sim.program.as_program`
        exactly like the other engines, so the two-level compile cache
        plus the PTM plan cache make rate-resweeps nearly allocation-
        free.
        """
        program = as_program(circuit, noise_model)
        n = program.num_qubits
        if n > self.max_qubits:
            raise width_limit_error("PTMEngine", self.max_qubits, n)
        plan = _plan_for(program, self.real_dtype, self.tag)
        if initial_state is None:
            state_t = _zero_state_coeffs(n, self.real_dtype)
        else:
            state_t = _coeffs_from_statevector(
                initial_state, n, self.real_dtype
            )
        for kind, arr, qubits in plan:
            if kind == "mat":
                state_t = _apply_mat(state_t, arr, qubits, n)
            else:
                _apply_diag(state_t, arr, qubits, n)
        coeffs = np.ascontiguousarray(state_t).reshape(-1)
        self._check_trace(coeffs, n)
        if sanitizer.enabled():
            sanitizer.record(
                "ptm",
                {"fingerprint": program.fingerprint, "num_qubits": n},
            )
        return coeffs

    def distribution(
        self,
        circuit: Union[QuantumCircuit, CompiledProgram],
        noise_model: Optional[NoiseModel] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Distribution:
        """Exact outcome distribution, including readout error if any.

        Readout always folds through the compiled program's resolved
        table — :func:`~repro.sim.program.as_program` bakes the model's
        readout errors in, so the uncompiled path needs no second pass.
        """
        from .density import _apply_readout_table_to_distribution

        program = as_program(circuit, noise_model)
        n = program.num_qubits
        coeffs = self.run(program, initial_state=initial_state)
        probs = self._probabilities(coeffs.reshape((4,) * n), n)
        dist = Distribution(probs, n)
        dist = _apply_readout_table_to_distribution(
            dist, program.readout, n
        )
        dist.method = "ptm"
        return dist

    # ------------------------------------------------------------------
    def _probabilities(self, state_t: np.ndarray, n: int) -> np.ndarray:
        """Computational-basis probabilities from the {I, Z} subtensor."""
        sub = state_t
        for a in range(n):
            sub = sub.take([0, 3], axis=a)
        M = np.array([[1.0, 1.0], [1.0, -1.0]]) / _SQRT2
        for a in range(n):
            sub = np.moveaxis(np.tensordot(M, sub, axes=([1], [a])), 0, a)
        p = np.ascontiguousarray(sub).reshape(-1)
        if p.dtype != np.float64:
            p = p.astype(np.float64)
        # Low-precision tiers drift at ~1e-7 per step: clip the tiny
        # negatives and renormalise before the Born rule sees them.
        np.clip(p, 0.0, None, out=p)
        total = float(p.sum())
        tol = norm_tolerance(self.dtype)
        if not np.isfinite(total) or abs(total - 1.0) > max(tol, 1e-6):
            raise NumericalHealthError(
                f"ptm engine: probability mass drifted to {total:.6g} "
                f"(tolerance {max(tol, 1e-6):.3g})"
            )
        return p / total

    def _check_trace(self, coeffs: np.ndarray, n: int) -> None:
        """Trace preservation: the all-I coefficient must stay 2**(-n/2)."""
        check_finite(coeffs, "ptm engine")
        trace = float(coeffs[0]) * (_SQRT2 ** n)
        tol = norm_tolerance(self.dtype)
        if abs(trace - 1.0) > max(tol, 1e-6):
            raise NumericalHealthError(
                f"ptm engine: trace drifted to {trace:.6g} "
                f"(tolerance {max(tol, 1e-6):.3g})"
            )
