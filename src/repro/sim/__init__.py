"""Simulation engines: statevector, density matrix, trajectories,
perturbative — plus the ``auto`` dispatcher used by the harness."""

from .batch import (
    FusedTrajectoryScheduler,
    TaskResult,
    TrajectoryTask,
    reset_scheduler_stats,
    scheduler_stats,
)
from .density import DensityMatrix, DensityMatrixEngine
from .engines import (
    choose_method,
    simulate_counts,
    simulate_distribution,
)
from .perturbative import PerturbativeEngine
from .program import (
    CompiledProgram,
    CompileStats,
    compile_cache_stats,
    compile_circuit,
    kernel_cache_stats,
    reset_compile_caches,
)
from .result import Counts, Distribution, extract_register_values
from .statevector import Statevector, StatevectorEngine, zero_state
from .trajectories import TrajectoryEngine

__all__ = [
    "CompiledProgram",
    "CompileStats",
    "compile_circuit",
    "compile_cache_stats",
    "kernel_cache_stats",
    "reset_compile_caches",
    "StatevectorEngine",
    "Statevector",
    "DensityMatrixEngine",
    "DensityMatrix",
    "TrajectoryEngine",
    "FusedTrajectoryScheduler",
    "TrajectoryTask",
    "TaskResult",
    "scheduler_stats",
    "reset_scheduler_stats",
    "PerturbativeEngine",
    "simulate_counts",
    "simulate_distribution",
    "choose_method",
    "Counts",
    "Distribution",
    "extract_register_values",
    "zero_state",
]
