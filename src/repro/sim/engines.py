"""Engine dispatch: pick the right simulator for a (circuit, noise) pair.

``method="auto"`` implements the strategy documented in DESIGN.md:
ideal -> statevector; small noisy -> exact density matrix; large noisy ->
batched trajectories.  ``simulate_counts`` is the single entry point the
experiment harness uses.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..runtime import sanitizer
from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from .density import DensityMatrixEngine
from .perturbative import PerturbativeEngine
from .program import CompiledProgram
from .ptm import PTMEngine
from .result import Counts, Distribution
from .statevector import StatevectorEngine
from .trajectories import TrajectoryEngine

__all__ = ["simulate_counts", "simulate_distribution", "choose_method"]

#: Largest register handled by the exact density-matrix engine in auto mode.
DENSITY_MAX_QUBITS = 10

Simulatable = Union[QuantumCircuit, CompiledProgram]


def _is_ideal(
    circuit: Simulatable, noise_model: Optional[NoiseModel]
) -> bool:
    if isinstance(circuit, CompiledProgram):
        return circuit.num_noise_sites == 0 and not circuit.readout
    return noise_model is None or noise_model.is_ideal


def choose_method(
    circuit: Simulatable, noise_model: Optional[NoiseModel] = None
) -> str:
    """The auto-dispatch rule: statevector / density / trajectory.

    For a :class:`~repro.sim.program.CompiledProgram` the noise sites
    baked into the program decide; ``noise_model`` is then ignored.
    """
    if _is_ideal(circuit, noise_model):
        return "statevector"
    if circuit.num_qubits <= DENSITY_MAX_QUBITS:
        return "density"
    return "trajectory"


def _cut_distribution(
    circuit: Simulatable,
    noise_model: Optional[NoiseModel],
    initial_state: Optional[np.ndarray],
    trajectories: int,
    rng: Optional[np.random.Generator],
    cut,
) -> Distribution:
    """Dispatch ``method="cut"`` to :mod:`repro.cut` (lazy import)."""
    from ..cut import CutConfig, cut_distribution

    if isinstance(circuit, CompiledProgram):
        raise ValueError(
            "method='cut' needs the raw QuantumCircuit — fragments are "
            "re-lowered individually (pass the circuit, not the "
            "compiled program)"
        )
    return cut_distribution(
        circuit,
        noise_model,
        config=cut if cut is not None else CutConfig(),
        initial_state=initial_state,
        trajectories=trajectories,
        rng=rng,
    )


def simulate_distribution(
    circuit: Simulatable,
    noise_model: Optional[NoiseModel] = None,
    method: str = "auto",
    max_order: int = 1,
    initial_state: Optional[np.ndarray] = None,
    dtype=None,
    trajectories: int = 128,
    rng: Optional[np.random.Generator] = None,
    cut=None,
) -> Distribution:
    """Exact (or deterministic-approximate) outcome distribution.

    ``method`` in {"auto", "statevector", "density", "ptm",
    "perturbative", "cut"}.  The trajectory engine is excluded here because
    its output is stochastic — use :func:`simulate_counts` for sampled
    results; in auto mode a circuit that would dispatch to the
    trajectory engine is computed perturbatively instead.  ``"ptm"``
    is the Pauli-transfer-matrix exact lane (:mod:`repro.sim.ptm`) —
    identical output contract to ``"density"`` with pre-compiled
    superoperators.  The *resolved* engine name is
    recorded on the result as ``Distribution.method``, so callers can
    see (and tests can assert) which engine actually ran — previously
    the trajectory->perturbative substitution happened silently.

    ``circuit`` may be a :class:`~repro.sim.program.CompiledProgram`;
    its baked-in noise sites and readout table are then used and
    ``noise_model`` is ignored.
    """
    from .density import (
        _apply_readout_table_to_distribution,
        _apply_readout_to_distribution,
    )

    if method == "auto":
        method = choose_method(circuit, noise_model)
        if method == "trajectory":
            method = "perturbative"
    if method == "cut":
        # Readout folds inside the cut path (on the reconstruction).
        return _cut_distribution(
            circuit, noise_model, initial_state, trajectories, rng, cut
        )
    is_program = isinstance(circuit, CompiledProgram)
    if method == "statevector":
        dist = StatevectorEngine(dtype=dtype).distribution(
            circuit, initial_state
        )
    elif method == "density":
        # Readout folding happens inside the density path already.
        dist = DensityMatrixEngine(dtype=dtype).distribution(
            circuit, noise_model, initial_state
        )
        dist.method = method
        return dist
    elif method == "ptm":
        # Readout folds inside the PTM path too (compiled table).
        dist = PTMEngine(dtype=dtype).distribution(
            circuit, noise_model, initial_state
        )
        dist.method = method
        return dist
    elif method == "perturbative":
        dist = PerturbativeEngine(max_order=max_order, dtype=dtype).distribution(
            circuit, noise_model, initial_state
        )
    else:
        raise ValueError(f"unknown method {method!r}")
    if is_program:
        dist = _apply_readout_table_to_distribution(
            dist, circuit.readout, circuit.num_qubits
        )
    elif noise_model is not None:
        dist = _apply_readout_to_distribution(
            dist, noise_model, circuit.num_qubits
        )
    dist.method = method
    return dist


def simulate_counts(
    circuit: Simulatable,
    noise_model: Optional[NoiseModel] = None,
    shots: int = 2048,
    method: str = "auto",
    trajectories: int = 128,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    initial_state: Optional[np.ndarray] = None,
    dtype=None,
    split_clean: bool = True,
    dedup: bool = False,
    cut=None,
) -> Counts:
    """Sampled measurement counts over all qubits.

    The harness's single entry point.  ``method`` in {"auto",
    "statevector", "density", "ptm", "trajectory", "perturbative",
    "cut"}; non-trajectory methods compute the exact distribution and
    sample it.  ``method="cut"`` routes through :mod:`repro.cut`
    (fragment evaluation + tensor reconstruction; ``cut`` may carry a
    :class:`~repro.cut.CutConfig`) and needs the raw circuit.  ``dtype=None`` resolves through the active
    :mod:`~repro.sim.backend` (``REPRO_BACKEND``).
    ``split_clean`` toggles the trajectory engine's exact ideal/erred
    ensemble split (see :mod:`repro.sim.trajectories`); ``dedup``
    routes Pauli-only trajectory runs through the batched scheduler,
    which simulates each distinct error configuration once (exact, but
    a different — equally valid — random stream).  The resolved engine
    name is recorded as ``Counts.method``.

    ``circuit`` may be a precompiled
    :class:`~repro.sim.program.CompiledProgram` (e.g. from
    :func:`repro.sim.program.compile_circuit`), which skips lowering in
    the hot path of a sweep.
    """
    if shots < 1:
        raise ValueError(f"shots must be >= 1, got {shots}")
    if trajectories < 1:
        raise ValueError(f"trajectories must be >= 1, got {trajectories}")
    if rng is None:
        # repro: allow[DET001] reason=public API convenience; every result path (runner, batch, executor) threads an explicit (seed, content_key)-derived Generator
        rng = np.random.default_rng(seed)
    if method == "auto":
        method = choose_method(circuit, noise_model)
    if method == "trajectory":
        engine = TrajectoryEngine(
            trajectories=trajectories, rng=rng, dtype=dtype,
            split_clean=split_clean, dedup=dedup,
        )
        counts = engine.run(circuit, noise_model, shots, initial_state)
        counts.method = method
    elif method == "cut":
        dist = _cut_distribution(
            circuit, noise_model, initial_state, trajectories, rng, cut
        )
        counts = dist.sample(shots, rng)
        counts.method = "cut"
        counts.cut_info = dist.cut_info
    else:
        dist = simulate_distribution(
            circuit, noise_model, method=method,
            initial_state=initial_state, dtype=dtype,
        )
        counts = dist.sample(shots, rng)
        counts.method = dist.method
    if sanitizer.enabled():
        sanitizer.record(
            "counts",
            {
                "data": dict(counts.items()),
                "num_qubits": counts.num_qubits,
                "method": counts.method,
            },
        )
    return counts
