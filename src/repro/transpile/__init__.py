"""Transpilation to the IBM basis: decomposition, optimisation, routing."""

from .basis import IBM_BASIS, BasisTarget, is_in_basis
from .counts import GateCounts, gate_counts
from .decompose import TranspileError, decompose_instruction, decompose_to_basis
from .euler import euler_zyz_angles, zsx_sequence
from .layout import (
    CouplingMap,
    Layout,
    full_coupling,
    grid_coupling,
    heavy_hex_coupling,
    linear_coupling,
    ring_coupling,
)
from .optimize import (
    cancel_adjacent_cx,
    drop_identities,
    merge_1q_runs,
    optimize_circuit,
)
from .passes import PassManager, transpile
from .routing import RoutingResult, route_circuit

__all__ = [
    "transpile",
    "PassManager",
    "IBM_BASIS",
    "BasisTarget",
    "is_in_basis",
    "decompose_to_basis",
    "decompose_instruction",
    "TranspileError",
    "euler_zyz_angles",
    "zsx_sequence",
    "gate_counts",
    "GateCounts",
    "optimize_circuit",
    "merge_1q_runs",
    "cancel_adjacent_cx",
    "drop_identities",
    "CouplingMap",
    "Layout",
    "full_coupling",
    "linear_coupling",
    "ring_coupling",
    "grid_coupling",
    "heavy_hex_coupling",
    "route_circuit",
    "RoutingResult",
]
