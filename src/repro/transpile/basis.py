"""Transpilation targets (gate bases).

The study's target is the universal basis of IBM superconducting
machines (paper §4): ``Id, X, RZ, SX, CX``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..circuits.circuit import QuantumCircuit

__all__ = ["IBM_BASIS", "BasisTarget", "is_in_basis"]

#: The paper's transpilation basis.
IBM_BASIS: FrozenSet[str] = frozenset({"id", "x", "rz", "sx", "cx"})

#: Non-gate ops always allowed through transpilation.
_STRUCTURAL = frozenset({"barrier", "measure", "reset"})


class BasisTarget:
    """A named set of allowed gate names."""

    def __init__(self, names: Iterable[str], name: str = "custom") -> None:
        self.names = frozenset(names)
        self.name = name

    def allows(self, gate_name: str) -> bool:
        """Whether the named gate may appear in a transpiled circuit."""
        return gate_name in self.names or gate_name in _STRUCTURAL

    def __contains__(self, gate_name: str) -> bool:
        return self.allows(gate_name)

    def __repr__(self) -> str:
        return f"BasisTarget({self.name}: {sorted(self.names)})"


IBM_TARGET = BasisTarget(IBM_BASIS, "ibm")


def is_in_basis(circuit: QuantumCircuit, basis: FrozenSet[str] = IBM_BASIS) -> bool:
    """True when every op of ``circuit`` is a basis gate or structural."""
    return all(
        i.gate.name in basis or i.gate.name in _STRUCTURAL for i in circuit
    )
