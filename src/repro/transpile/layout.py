"""Qubit connectivity: coupling maps and layouts.

The paper assumes "an idealized layout with complete qubit connectivity"
(§4) — :func:`full_coupling`.  Real IBM devices are sparser; the maps
here (linear, ring, grid, heavy-hex) support the routing extension that
quantifies what the idealised assumption hides.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = [
    "CouplingMap",
    "full_coupling",
    "linear_coupling",
    "ring_coupling",
    "grid_coupling",
    "heavy_hex_coupling",
    "Layout",
]


class CouplingMap:
    """An undirected physical-connectivity graph over ``size`` qubits."""

    def __init__(self, edges: Iterable[Tuple[int, int]], size: int, name: str = "custom") -> None:
        self.size = int(size)
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.size))
        for a, b in edges:
            if not (0 <= a < self.size and 0 <= b < self.size):
                raise ValueError(f"edge ({a},{b}) out of range for size {size}")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            self.graph.add_edge(int(a), int(b))
        self._dist: Optional[Dict[int, Dict[int, int]]] = None
        self._paths: Dict[Tuple[int, int], List[int]] = {}

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """Sorted undirected edge list."""
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def connected(self, a: int, b: int) -> bool:
        """Whether qubits ``a`` and ``b`` share an edge."""
        return self.graph.has_edge(a, b)

    def is_fully_connected(self) -> bool:
        """True for all-to-all maps (no routing ever needed)."""
        n = self.size
        return self.graph.number_of_edges() == n * (n - 1) // 2

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop count between two physical qubits."""
        if self._dist is None:
            self._dist = dict(nx.all_pairs_shortest_path_length(self.graph))
        return self._dist[a][b]

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest physical path from ``a`` to ``b`` (cached)."""
        key = (a, b)
        path = self._paths.get(key)
        if path is None:
            path = nx.shortest_path(self.graph, a, b)
            self._paths[key] = path
        return path

    def __repr__(self) -> str:
        return (
            f"CouplingMap({self.name}, {self.size} qubits, "
            f"{self.graph.number_of_edges()} edges)"
        )


def full_coupling(size: int) -> CouplingMap:
    """All-to-all connectivity (the paper's idealised layout)."""
    edges = [(a, b) for a in range(size) for b in range(a + 1, size)]
    return CouplingMap(edges, size, "full")


def linear_coupling(size: int) -> CouplingMap:
    """A 1D chain."""
    return CouplingMap([(i, i + 1) for i in range(size - 1)], size, "linear")


def ring_coupling(size: int) -> CouplingMap:
    """A 1D ring."""
    edges = [(i, (i + 1) % size) for i in range(size)]
    return CouplingMap(edges, size, "ring")


def grid_coupling(rows: int, cols: int) -> CouplingMap:
    """A 2D rectangular grid (rows*cols qubits, row-major numbering)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, rows * cols, f"grid{rows}x{cols}")


def heavy_hex_coupling(distance: int = 3) -> CouplingMap:
    """A small heavy-hex-style lattice (IBM topology family).

    This is the unit-cell-tiled approximation used for routing studies,
    not a calibration-exact device map.
    """
    if distance < 1:
        raise ValueError("distance must be >= 1")
    # Rows of length 2d+1 joined by bridge qubits every fourth column
    # (offset alternating per row), like IBM's heavy-hex unit cells.
    # Node ids are allocated densely so no isolated qubits exist.
    row_len = 2 * distance + 1
    rows = distance + 1
    ids: dict = {}

    def node(key) -> int:
        if key not in ids:
            ids[key] = len(ids)
        return ids[key]

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(row_len - 1):
            edges.append((node(("q", r, c)), node(("q", r, c + 1))))
        if r + 1 < rows:
            offset = 0 if r % 2 == 0 else 2
            for c in range(offset, row_len, 4):
                bridge = node(("b", r, c))
                edges.append((node(("q", r, c)), bridge))
                edges.append((bridge, node(("q", r + 1, c))))
    return CouplingMap(edges, len(ids), f"heavy_hex(d={distance})")


class Layout:
    """A bijection logical qubit -> physical qubit."""

    def __init__(self, mapping: Dict[int, int]) -> None:
        self.l2p = dict(mapping)
        self.p2l = {p: l for l, p in self.l2p.items()}
        if len(self.p2l) != len(self.l2p):
            raise ValueError(f"layout {mapping} is not injective")

    @classmethod
    def trivial(cls, n: int) -> "Layout":
        """The identity layout on ``n`` qubits."""
        return cls({i: i for i in range(n)})

    def physical(self, logical: int) -> int:
        """Physical qubit currently holding ``logical``."""
        return self.l2p[logical]

    def swap_physical(self, p1: int, p2: int) -> None:
        """Record a physical SWAP: the logicals on p1/p2 exchange."""
        l1, l2 = self.p2l.get(p1), self.p2l.get(p2)
        if l1 is not None:
            self.l2p[l1] = p2
        if l2 is not None:
            self.l2p[l2] = p1
        self.p2l = {p: l for l, p in self.l2p.items()}

    def copy(self) -> "Layout":
        """An independent copy."""
        return Layout(self.l2p)

    def __repr__(self) -> str:
        return f"Layout({self.l2p})"
