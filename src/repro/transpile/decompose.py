"""Gate decomposition to the IBM basis.

Each logical gate has a rule mapping it to {id, x, rz, sx, cx}.  The
rules are chosen to reproduce the gate-count accounting of the paper's
Table I (see DESIGN.md and EXPERIMENTS.md):

* ``cp(lam)``  -> 3 RZ + 2 CX  (the standard phase-gate ladder)
* ``ccp(lam)`` -> 3 CP + 2 CX  -> 9 RZ + 8 CX
* ``h``        -> RZ(pi/2) SX RZ(pi/2)
* ``ch``       -> W on target, CX, W^dag on target with W = T H S; each
  three-gate 1q run is resynthesised to <= 3 basis gates, giving the
  1 CX + 6 1q form the paper counts.

Every decomposition is exact up to global phase, which is unobservable
because rules fire only after all controls are explicit gates.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

import numpy as np

from ..circuits import gates as G
from ..circuits.circuit import Instruction, QuantumCircuit
from .basis import IBM_BASIS, _STRUCTURAL
from .euler import zsx_sequence

__all__ = ["decompose_to_basis", "decompose_instruction", "TranspileError"]


class TranspileError(ValueError):
    """Raised when a circuit cannot be mapped to the target basis."""


def _seq_to_instrs(
    seq: Sequence, qubit: int
) -> List[Instruction]:
    out = []
    for name, params in seq:
        out.append(Instruction(G.make_gate(name, *params), [qubit]))
    return out


def _synth_1q(
    mat: np.ndarray, qubit: int, keep_zeros: bool = False
) -> List[Instruction]:
    """Minimal RZ/SX realisation of a 1q matrix on ``qubit``."""
    return _seq_to_instrs(zsx_sequence(mat, keep_zeros=keep_zeros), qubit)


# -- fixed product matrices used by the CH rule -----------------------------
_W_CH = (
    G.TGate().matrix @ G.HGate().matrix @ G.SGate().matrix
)  # applied S, H, T in circuit order


def _rule_cp(lam: float, c: int, t: int) -> List[Instruction]:
    half = lam / 2.0
    return [
        Instruction(G.RZGate(half), [c]),
        Instruction(G.CXGate(), [c, t]),
        Instruction(G.RZGate(-half), [t]),
        Instruction(G.CXGate(), [c, t]),
        Instruction(G.RZGate(half), [t]),
    ]


def _rule_crz(lam: float, c: int, t: int) -> List[Instruction]:
    half = lam / 2.0
    return [
        Instruction(G.RZGate(half), [t]),
        Instruction(G.CXGate(), [c, t]),
        Instruction(G.RZGate(-half), [t]),
        Instruction(G.CXGate(), [c, t]),
    ]


def _rule_ccp(lam: float, a: int, b: int, c: int) -> List[Instruction]:
    """ccp = cp(l/2) on (b,c); cx(a,b); cp(-l/2)(b,c); cx(a,b); cp(l/2)(a,c)."""
    half = lam / 2.0
    return [
        Instruction(G.CPGate(half), [b, c]),
        Instruction(G.CXGate(), [a, b]),
        Instruction(G.CPGate(-half), [b, c]),
        Instruction(G.CXGate(), [a, b]),
        Instruction(G.CPGate(half), [a, c]),
    ]


def _rule_ch(c: int, t: int) -> List[Instruction]:
    """CH = (I (x) W^dag) CX (I (x) W), W = T H S.

    Each W run is emitted in canonical RZ-SX-RZ form (``keep_zeros``):
    1 CX + 6 single-qubit gates, the paper's Table I accounting.
    """
    return (
        _synth_1q(_W_CH, t, keep_zeros=True)
        + [Instruction(G.CXGate(), [c, t])]
        + _synth_1q(_W_CH.conj().T, t, keep_zeros=True)
    )


def _rule_cch(a: int, b: int, t: int) -> List[Instruction]:
    """CCH = (I (x) W^dag) CCX (I (x) W) on the target."""
    return (
        _synth_1q(_W_CH, t, keep_zeros=True)
        + [Instruction(G.CCXGate(), [a, b, t])]
        + _synth_1q(_W_CH.conj().T, t, keep_zeros=True)
    )


def _rule_ccx(a: int, b: int, t: int) -> List[Instruction]:
    """The standard 6-CX, T-depth Toffoli."""
    T, Tdg, H = G.TGate(), G.TdgGate(), G.HGate()
    cx = G.CXGate
    return [
        Instruction(H, [t]),
        Instruction(cx(), [b, t]),
        Instruction(Tdg, [t]),
        Instruction(cx(), [a, t]),
        Instruction(T, [t]),
        Instruction(cx(), [b, t]),
        Instruction(Tdg, [t]),
        Instruction(cx(), [a, t]),
        Instruction(T, [b]),
        Instruction(T, [t]),
        Instruction(H, [t]),
        Instruction(cx(), [a, b]),
        Instruction(T, [a]),
        Instruction(Tdg, [b]),
        Instruction(cx(), [a, b]),
    ]


def _rule_swap(a: int, b: int) -> List[Instruction]:
    cx = G.CXGate
    return [
        Instruction(cx(), [a, b]),
        Instruction(cx(), [b, a]),
        Instruction(cx(), [a, b]),
    ]


def _rule_cswap(c: int, a: int, b: int) -> List[Instruction]:
    return (
        [Instruction(G.CXGate(), [b, a])]
        + [Instruction(G.CCXGate(), [c, a, b])]
        + [Instruction(G.CXGate(), [b, a])]
    )


def _rule_cz(a: int, b: int) -> List[Instruction]:
    return (
        [Instruction(G.HGate(), [b])]
        + [Instruction(G.CXGate(), [a, b])]
        + [Instruction(G.HGate(), [b])]
    )


def _rule_cy(c: int, t: int) -> List[Instruction]:
    return [
        Instruction(G.SdgGate(), [t]),
        Instruction(G.CXGate(), [c, t]),
        Instruction(G.SGate(), [t]),
    ]


def decompose_instruction(
    instr: Instruction, basis: FrozenSet[str] = IBM_BASIS
) -> List[Instruction]:
    """One level of decomposition of ``instr`` toward ``basis``.

    Basis gates and structural ops pass through unchanged; 1q gates go
    straight to minimal RZ/SX form; known multi-qubit gates expand by
    their rule.  Unknown gates with a matrix and <= 2 qubits fall back to
    synthesis; anything else raises :class:`TranspileError`.
    """
    g = instr.gate
    name = g.name
    if name in basis or name in _STRUCTURAL:
        return [instr]
    q = instr.qubits
    if g.num_qubits == 1:
        if not g.is_unitary:
            raise TranspileError(f"cannot decompose non-unitary {name!r}")
        return _synth_1q(g.matrix, q[0])
    if name == "cp":
        return _rule_cp(g.params[0], q[0], q[1])
    if name == "crz":
        return _rule_crz(g.params[0], q[0], q[1])
    if name == "ccp":
        return _rule_ccp(g.params[0], q[0], q[1], q[2])
    if name == "ch":
        return _rule_ch(q[0], q[1])
    if name == "cch":
        return _rule_cch(q[0], q[1], q[2])
    if name == "ccx":
        return _rule_ccx(q[0], q[1], q[2])
    if name == "swap":
        return _rule_swap(q[0], q[1])
    if name == "cswap":
        return _rule_cswap(q[0], q[1], q[2])
    if name == "cz":
        return _rule_cz(q[0], q[1])
    if name == "cy":
        return _rule_cy(q[0], q[1])
    raise TranspileError(
        f"no decomposition rule for {name!r} on {g.num_qubits} qubits"
    )


def decompose_to_basis(
    circuit: QuantumCircuit, basis: FrozenSet[str] = IBM_BASIS
) -> QuantumCircuit:
    """Fully expand ``circuit`` into ``basis`` gates.

    Rules are applied repeatedly (rules may emit intermediate gates like
    ``cp`` inside ``ccp``) until a fixed point; a non-decreasing guard
    prevents infinite loops on bad rule sets.
    """
    out = circuit._like(f"{circuit.name}@basis")
    pending: List[Instruction] = list(circuit.instructions)
    # Worklist expansion, depth-first to preserve order.
    result: List[Instruction] = []
    stack = list(reversed(pending))
    guard = 0
    limit = 200 * max(1, len(pending)) + 10_000
    while stack:
        guard += 1
        if guard > limit:
            raise TranspileError("decomposition did not converge")
        instr = stack.pop()
        expanded = decompose_instruction(instr, basis)
        if len(expanded) == 1 and expanded[0] is instr:
            result.append(instr)
        else:
            stack.extend(reversed(expanded))
    out._instructions = result
    return out
