"""Swap routing onto limited-connectivity devices.

A greedy shortest-path router: when a two-qubit gate falls on physically
non-adjacent qubits, SWAPs walk one operand along the shortest physical
path until adjacency holds.  The paper sidesteps routing with its
idealised full-connectivity layout; this pass exists so the routing
overhead the paper defers ("noise associated with qubit-layout and/or
swap-gates", §4) can be quantified — see the routing ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuits import gates as G
from ..circuits.circuit import QuantumCircuit
from .decompose import TranspileError
from .layout import CouplingMap, Layout

__all__ = ["route_circuit", "RoutingResult"]


@dataclass
class RoutingResult:
    """A routed circuit plus bookkeeping.

    ``circuit`` acts on *physical* qubits; ``final_layout`` maps each
    logical qubit to the physical qubit holding it at the end (needed to
    read out measurement results).
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swaps_inserted: int


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
) -> RoutingResult:
    """Insert SWAPs so every 2q gate lands on a coupled pair.

    Gates wider than two qubits must be decomposed first.  Measurements
    and barriers are remapped through the live layout.
    """
    n = circuit.num_qubits
    if coupling.size < n:
        raise TranspileError(
            f"coupling map has {coupling.size} qubits, circuit needs {n}"
        )
    layout = (initial_layout or Layout.trivial(n)).copy()
    initial = layout.copy()
    out = QuantumCircuit(coupling.size, circuit.num_clbits)
    out.name = f"{circuit.name}@{coupling.name}"
    swaps = 0

    for instr in circuit:
        g = instr.gate
        if g.name == "barrier":
            out.append(G.BarrierOp(len(instr.qubits)),
                       [layout.physical(q) for q in instr.qubits])
            continue
        if g.num_qubits == 1:
            out.append(g, [layout.physical(instr.qubits[0])], instr.clbits)
            continue
        if g.num_qubits > 2:
            raise TranspileError(
                f"route_circuit requires <=2q gates, got {g.name!r} — "
                "decompose first"
            )
        a, b = (layout.physical(q) for q in instr.qubits)
        if not coupling.connected(a, b):
            path = coupling.shortest_path(a, b)
            # Walk `a`'s logical qubit down the path until adjacent to b.
            for step in path[1:-1]:
                out.cx(a, step)
                out.cx(step, a)
                out.cx(a, step)
                layout.swap_physical(a, step)
                swaps += 1
                a = step
        out.append(g, [a, b], instr.clbits)
    return RoutingResult(out, initial, layout, swaps)
