"""Single-qubit Euler synthesis for the IBM RZ/SX basis.

Any 2x2 unitary equals ``e^{i gamma} U(theta, phi, lam)`` for the generic
rotation of :func:`repro.circuits.gates._u_matrix`; in the IBM basis that
becomes (verified identities, tested against random unitaries):

* ``theta = 0 (mod 2pi)``:   ``RZ(phi + lam)``                — 1 gate
* ``theta = pi/2 (mod 2pi)``: ``RZ(lam - pi/2) SX RZ(phi + pi/2)`` — 3
* otherwise:    ``RZ(lam) SX RZ(theta + pi) SX RZ(phi + pi)`` — 5

(gates listed in circuit order, i.e. leftmost applied first).  Global
phase is dropped — every caller decomposes *after* all controls have been
made explicit, so global phase is unobservable.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

__all__ = ["euler_zyz_angles", "zsx_sequence"]

_TWO_PI = 2.0 * math.pi


def _mod_2pi(angle: float) -> float:
    """Reduce to (-pi, pi]."""
    out = math.remainder(angle, _TWO_PI)
    return out


def euler_zyz_angles(mat: np.ndarray) -> Tuple[float, float, float, float]:
    """(theta, phi, lam, gamma) with ``mat = e^{i gamma} U(theta,phi,lam)``.

    ``theta`` is returned in [0, pi].
    """
    mat = np.asarray(mat, dtype=complex)
    if mat.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got {mat.shape}")
    # Normalise determinant drift from accumulated float error.
    det = np.linalg.det(mat)
    mat = mat / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(mat[1, 0]), abs(mat[0, 0]))
    if abs(mat[0, 0]) < 1e-12:
        # theta = pi: U = [[0, -e^{i lam}], [e^{i phi}, 0]]; lam free.
        lam = 0.0
        gamma = cmath.phase(-mat[0, 1])
        phi = cmath.phase(mat[1, 0]) - gamma
    elif abs(mat[1, 0]) < 1e-12:
        # theta = 0: diagonal; phi free.
        phi = 0.0
        gamma = cmath.phase(mat[0, 0])
        lam = cmath.phase(mat[1, 1]) - gamma
    else:
        gamma = cmath.phase(mat[0, 0])
        phi = cmath.phase(mat[1, 0]) - gamma
        lam = cmath.phase(-mat[0, 1]) - gamma
    # Undo the det normalisation's phase shift in gamma (callers mostly
    # ignore gamma; keep it consistent anyway).
    gamma += cmath.phase(cmath.sqrt(det))
    return theta, _mod_2pi(phi), _mod_2pi(lam), _mod_2pi(gamma)


def zsx_sequence(
    mat: np.ndarray, atol: float = 1e-10, keep_zeros: bool = False
) -> List[Tuple[str, Tuple[float, ...]]]:
    """Minimal RZ/SX realisation of a 2x2 unitary, up to global phase.

    Returns ``[(name, params), ...]`` in circuit order; empty for
    (phase times) identity.  ``keep_zeros=True`` emits the canonical
    RZ-SX-RZ form even when an RZ angle vanishes — the accounting used
    by the Qiskit u2 path the paper's Table I reflects.
    """
    theta, phi, lam, _ = euler_zyz_angles(mat)
    if abs(theta) < atol or abs(theta - _TWO_PI) < atol:
        total = _mod_2pi(phi + lam)
        if abs(total) < atol and not keep_zeros:
            return []
        return [("rz", (total,))]
    if abs(theta - math.pi / 2.0) < atol:
        seq: List[Tuple[str, Tuple[float, ...]]] = []
        a = _mod_2pi(lam - math.pi / 2.0)
        b = _mod_2pi(phi + math.pi / 2.0)
        if keep_zeros or abs(a) > atol:
            seq.append(("rz", (a,)))
        seq.append(("sx", ()))
        if keep_zeros or abs(b) > atol:
            seq.append(("rz", (b,)))
        return seq
    if abs(theta - math.pi) < atol and not keep_zeros:
        # theta = pi with lam pinned to 0: U ~ RZ(phi + pi) . X
        # (X itself when phi = 0 — this also covers Y, which is X up to
        # global phase).
        seq = [("x", ())]
        b = _mod_2pi(phi + math.pi)
        if abs(b) > atol:
            seq.append(("rz", (b,)))
        return seq
    seq = []
    if keep_zeros or abs(_mod_2pi(lam)) > atol:
        seq.append(("rz", (_mod_2pi(lam),)))
    seq.append(("sx", ()))
    mid = _mod_2pi(theta + math.pi)
    if keep_zeros or abs(mid) > atol:
        seq.append(("rz", (mid,)))
    seq.append(("sx", ()))
    b = _mod_2pi(phi + math.pi)
    if keep_zeros or abs(b) > atol:
        seq.append(("rz", (b,)))
    return seq
