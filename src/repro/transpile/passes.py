"""The transpilation pipeline.

``transpile(circuit, optimization_level=...)`` mirrors the stack the
paper used:

* level 0 — decompose every logical gate to the IBM basis using the
  per-gate rules (each rule already emits minimal 1q runs).  This is the
  accounting the paper's Table I reflects.
* level 1 — additionally run the global peephole pipeline (merge 1q runs
  across gate boundaries, cancel adjacent CX pairs, drop identities).

An optional coupling map triggers swap routing before decomposition of
the inserted SWAPs.

Checked mode
------------
``transpile(..., checked=True)`` (or ``PassManager(checked=True)``)
verifies after every stage that the output still implements the input,
using the phase-polynomial equivalence checker of
:mod:`repro.lint.equivalence` — symbolic, so it scales to the paper's
full corpus with no unitary construction; small exotic circuits fall
back to unitary comparison automatically.  A stage that breaks
semantics raises :class:`PassVerificationError`; a stage the checker
cannot decide raises too by default (set ``on_unknown="warn"`` to
continue with a warning).
"""

from __future__ import annotations

import warnings
from typing import Dict, FrozenSet, Optional

from ..circuits.circuit import QuantumCircuit
from .basis import IBM_BASIS
from .decompose import TranspileError, decompose_to_basis
from .layout import CouplingMap, Layout
from .optimize import optimize_circuit
from .routing import route_circuit

__all__ = ["transpile", "PassManager", "PassVerificationError"]


class PassVerificationError(TranspileError):
    """A checked transpiler stage failed semantic verification."""


def _verify_stage(
    stage_name: str,
    before: QuantumCircuit,
    after: QuantumCircuit,
    output_map: Optional[Dict[int, int]] = None,
    on_unknown: str = "raise",
) -> None:
    """Raise unless ``after`` provably implements ``before``."""
    from ..lint.equivalence import check_equivalence  # lazy: avoid cycle

    result = check_equivalence(before, after, output_map=output_map)
    if result.verdict == "equivalent":
        return
    if result.verdict == "not_equivalent":
        raise PassVerificationError(
            f"pass {stage_name!r} changed circuit semantics "
            f"({result.method}): {result.detail}"
        )
    # verdict == "unknown"
    message = (
        f"pass {stage_name!r} could not be verified: {result.detail}"
    )
    if on_unknown == "raise":
        raise PassVerificationError(message)
    if on_unknown == "warn":
        warnings.warn(message, stacklevel=3)
    # "ignore": fall through


class PassManager:
    """An ordered list of circuit -> circuit passes.

    With ``checked=True`` every pass's output is verified equivalent to
    its input before the pipeline continues.  A pass that legitimately
    permutes wires (routing) can carry the mapping in an ``output_map``
    attribute (logical qubit -> physical wire), or be registered via
    :meth:`append` with ``output_map_from`` extracting the mapping from
    the pass result.
    """

    def __init__(
        self,
        passes=(),
        checked: bool = False,
        on_unknown: str = "raise",
    ) -> None:
        if on_unknown not in ("raise", "warn", "ignore"):
            raise ValueError(
                f"on_unknown must be raise/warn/ignore, got {on_unknown!r}"
            )
        self.passes = list(passes)
        self.checked = checked
        self.on_unknown = on_unknown

    def append(self, pass_fn) -> "PassManager":
        """Add a pass; returns self for chaining."""
        self.passes.append(pass_fn)
        return self

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Apply every pass in order (verifying each when checked)."""
        for p in self.passes:
            before = circuit
            circuit = p(before)
            if self.checked:
                name = getattr(p, "__name__", None) or repr(p)
                output_map = getattr(p, "output_map", None)
                _verify_stage(
                    name, before, circuit, output_map, self.on_unknown
                )
        return circuit


def transpile(
    circuit: QuantumCircuit,
    basis: FrozenSet[str] = IBM_BASIS,
    optimization_level: int = 0,
    coupling: Optional[CouplingMap] = None,
    initial_layout: Optional[Layout] = None,
    checked: bool = False,
    on_unknown: str = "raise",
) -> QuantumCircuit:
    """Map ``circuit`` to the target basis (and topology, if given).

    Returns the transpiled circuit.  When ``coupling`` is given, the
    returned circuit acts on physical qubits; use :func:`route_circuit`
    directly if the final layout is needed for readout.

    ``checked=True`` verifies every stage symbolically (see module
    docs); the routing stage is verified against the routing result's
    final layout, so wire permutations are accounted for exactly.
    """
    if optimization_level not in (0, 1, 2):
        raise TranspileError(
            f"optimization_level must be 0, 1 or 2, got {optimization_level}"
        )
    current = circuit
    if coupling is not None and not coupling.is_fully_connected():
        # Routing needs <=2q gates; decompose wide gates first.
        pre = decompose_to_basis(current, basis)
        if checked:
            _verify_stage(
                "decompose_to_basis(pre-routing)", current, pre,
                on_unknown=on_unknown,
            )
        routed = route_circuit(pre, coupling, initial_layout)
        if checked:
            output_map = {
                l: routed.final_layout.l2p[l] for l in range(pre.num_qubits)
            }
            _verify_stage(
                "route_circuit", pre, routed.circuit, output_map,
                on_unknown,
            )
        current = routed.circuit
    stage = decompose_to_basis(current, basis)
    if checked:
        _verify_stage(
            "decompose_to_basis", current, stage, on_unknown=on_unknown
        )
    current = stage
    if optimization_level >= 1:
        stage = optimize_circuit(current, level=optimization_level)
        if checked:
            _verify_stage(
                "optimize_circuit", current, stage, on_unknown=on_unknown
            )
        current = stage
    return current
