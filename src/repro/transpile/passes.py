"""The transpilation pipeline.

``transpile(circuit, optimization_level=...)`` mirrors the stack the
paper used:

* level 0 — decompose every logical gate to the IBM basis using the
  per-gate rules (each rule already emits minimal 1q runs).  This is the
  accounting the paper's Table I reflects.
* level 1 — additionally run the global peephole pipeline (merge 1q runs
  across gate boundaries, cancel adjacent CX pairs, drop identities).

An optional coupling map triggers swap routing before decomposition of
the inserted SWAPs.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..circuits.circuit import QuantumCircuit
from .basis import IBM_BASIS
from .decompose import TranspileError, decompose_to_basis
from .layout import CouplingMap, Layout
from .optimize import optimize_circuit
from .routing import route_circuit

__all__ = ["transpile", "PassManager"]


class PassManager:
    """An ordered list of circuit -> circuit passes."""

    def __init__(self, passes=()) -> None:
        self.passes = list(passes)

    def append(self, pass_fn) -> "PassManager":
        """Add a pass; returns self for chaining."""
        self.passes.append(pass_fn)
        return self

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Apply every pass in order."""
        for p in self.passes:
            circuit = p(circuit)
        return circuit


def transpile(
    circuit: QuantumCircuit,
    basis: FrozenSet[str] = IBM_BASIS,
    optimization_level: int = 0,
    coupling: Optional[CouplingMap] = None,
    initial_layout: Optional[Layout] = None,
) -> QuantumCircuit:
    """Map ``circuit`` to the target basis (and topology, if given).

    Returns the transpiled circuit.  When ``coupling`` is given, the
    returned circuit acts on physical qubits; use :func:`route_circuit`
    directly if the final layout is needed for readout.
    """
    if optimization_level not in (0, 1, 2):
        raise TranspileError(
            f"optimization_level must be 0, 1 or 2, got {optimization_level}"
        )
    current = circuit
    if coupling is not None and not coupling.is_fully_connected():
        # Routing needs <=2q gates; decompose wide gates first.
        current = decompose_to_basis(current, basis)
        current = route_circuit(current, coupling, initial_layout).circuit
    current = decompose_to_basis(current, basis)
    if optimization_level >= 1:
        current = optimize_circuit(current, level=optimization_level)
    return current
