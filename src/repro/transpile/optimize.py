"""Peephole optimisation passes on basis circuits.

Three passes, mirroring the light (level-1) optimisations of the stack
the paper used:

* :func:`merge_1q_runs` — every maximal run of single-qubit gates on a
  wire is resynthesised into at most three RZ/SX gates (Euler form).
* :func:`cancel_adjacent_cx` — adjacent identical CX (and self-inverse
  2q) pairs annihilate.
* :func:`drop_identities` — explicit ``id`` gates and zero-angle
  rotations are removed.

All passes preserve the circuit unitary up to global phase.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..circuits import gates as G
from ..circuits.circuit import Instruction, QuantumCircuit
from .euler import zsx_sequence

__all__ = [
    "merge_1q_runs",
    "cancel_adjacent_cx",
    "drop_identities",
    "commute_phases",
    "optimize_circuit",
]

_SELF_INVERSE_2Q = frozenset({"cx", "cz", "swap", "ch", "cy"})


def commute_phases(circuit: QuantumCircuit, atol: float = 1e-12) -> QuantumCircuit:
    """Slide 1q phase gates through everything they commute with.

    A pending RZ on wire ``w`` passes through any *diagonal* gate (cp,
    cz, ccp, rz, crz, ...) and through CX/CCX when ``w`` is a control
    wire; it flushes just before the first non-commuting gate (sx, h,
    CX target, measure...).  Runs of phase gates separated only by
    transparent gates therefore merge into one RZ — the dominant
    saving in CP-heavy Fourier arithmetic.
    """
    pending = {}  # wire -> accumulated rz angle

    out = circuit._like(circuit.name)

    def flush(wire: int) -> None:
        angle = pending.pop(wire, 0.0)
        angle = math.remainder(angle, 2 * math.pi)
        if abs(angle) > atol:
            out._instructions.append(
                Instruction(G.RZGate(angle), [wire])
            )

    for instr in circuit:
        g = instr.gate
        name = g.name
        if g.num_qubits == 1:
            # 1q diagonal gates absorbable into a running RZ angle (up
            # to global phase, unobservable post-control-expansion):
            # rz itself plus the shared phase-on-ones family.
            angle = g.params[0] if name == "rz" else G.phase_on_ones_angle(g)
            if angle is not None:
                w = instr.qubits[0]
                pending[w] = pending.get(w, 0.0) + angle
                continue
        if name == "id":
            continue
        if g.is_unitary and g.is_diagonal:
            out._instructions.append(instr)
            continue
        if name in ("cx", "ccx"):
            # Controls are transparent; only the target blocks.
            target = instr.qubits[-1]
            flush(target)
            out._instructions.append(instr)
            continue
        for w in instr.qubits:
            flush(w)
        out._instructions.append(instr)
    for w in sorted(pending):
        flush(w)
    return out


def drop_identities(
    circuit: QuantumCircuit, atol: float = 1e-12
) -> QuantumCircuit:
    """Remove ``id`` gates and rotations with angle 0 (mod 2*pi)."""
    out = circuit._like(circuit.name)
    for instr in circuit:
        name = instr.gate.name
        if name == "id":
            continue
        if name in ("rz", "p", "rx", "ry") and instr.gate.params:
            if abs(math.remainder(instr.gate.params[0], 2 * math.pi)) < atol:
                continue
        out._instructions.append(instr)
    return out


def cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Annihilate adjacent identical self-inverse 2q gates.

    "Adjacent" means no intervening op touches either qubit.  Applied
    until a fixed point.
    """
    instrs = list(circuit.instructions)
    changed = True
    while changed:
        changed = False
        # last_open[w]: index into `kept` of the latest op touching wire w.
        kept: List[Optional[Instruction]] = []
        last_open = {}
        for instr in instrs:
            name = instr.gate.name
            if (
                name in _SELF_INVERSE_2Q
                and instr.qubits[0] in last_open
                and instr.qubits[1] in last_open
                and last_open[instr.qubits[0]] == last_open[instr.qubits[1]]
            ):
                j = last_open[instr.qubits[0]]
                prev = kept[j]
                if prev is not None and prev == instr:
                    kept[j] = None
                    for w in instr.qubits:
                        del last_open[w]
                    changed = True
                    continue
            kept.append(instr)
            idx = len(kept) - 1
            for w in instr.qubits:
                last_open[w] = idx
        instrs = [i for i in kept if i is not None]
    out = circuit._like(circuit.name)
    out._instructions = instrs
    return out


def merge_1q_runs(
    circuit: QuantumCircuit, atol: float = 1e-10
) -> QuantumCircuit:
    """Resynthesise maximal single-qubit runs into minimal RZ/SX form.

    Barriers, measurements and multi-qubit gates break runs.  A run that
    multiplies to (a phase times) the identity vanishes entirely.
    """
    out = circuit._like(circuit.name)
    pending: dict = {}  # wire -> accumulated 2x2 matrix

    def flush(wire: int) -> None:
        mat = pending.pop(wire, None)
        if mat is None:
            return
        for name, params in zsx_sequence(mat, atol):
            out._instructions.append(
                Instruction(G.make_gate(name, *params), [wire])
            )

    for instr in circuit:
        g = instr.gate
        if g.num_qubits == 1 and g.is_unitary:
            w = instr.qubits[0]
            acc = pending.get(w)
            pending[w] = g.matrix @ acc if acc is not None else g.matrix
            continue
        for w in instr.qubits:
            flush(w)
        out._instructions.append(instr)
    for w in sorted(pending):
        flush(w)
    return out


def optimize_circuit(
    circuit: QuantumCircuit, level: int = 1
) -> QuantumCircuit:
    """Peephole pipeline: merge 1q runs, cancel CX pairs, iterate.

    CX cancellation can create new adjacent 1q runs and vice versa, so
    the passes alternate until the op count stops shrinking.  ``level
    >= 2`` additionally slides phase gates through commuting structure
    (:func:`commute_phases`) each round.
    """
    current = drop_identities(circuit)
    while True:
        size = current.size()
        current = merge_1q_runs(current)
        if level >= 2:
            current = commute_phases(current)
        current = cancel_adjacent_cx(current)
        if current.size() >= size:
            return current
