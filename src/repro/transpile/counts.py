"""Gate-count accounting (the paper's Table I quantities)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuits.circuit import QuantumCircuit

__all__ = ["GateCounts", "gate_counts"]

_EXCLUDED = frozenset({"barrier", "measure", "reset"})


@dataclass(frozen=True)
class GateCounts:
    """1q/2q gate totals plus the per-name breakdown."""

    one_qubit: int
    two_qubit: int
    by_name: Dict[str, int]

    @property
    def total(self) -> int:
        """1q + 2q gate total."""
        return self.one_qubit + self.two_qubit

    def __str__(self) -> str:
        names = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_name.items()))
        return f"1q={self.one_qubit} 2q={self.two_qubit} ({names})"


def gate_counts(circuit: QuantumCircuit) -> GateCounts:
    """Count 1q and 2q gates, excluding barriers/measure/reset.

    Matches the paper's Table I accounting: every single-qubit basis gate
    (including RZ) counts toward 1q; CX (and any other two-qubit gate)
    toward 2q.
    """
    one = two = 0
    by_name: Dict[str, int] = {}
    for instr in circuit:
        name = instr.gate.name
        if name in _EXCLUDED:
            continue
        by_name[name] = by_name.get(name, 0) + 1
        if instr.gate.num_qubits == 1:
            one += 1
        elif instr.gate.num_qubits == 2:
            two += 1
        else:
            # >2q gates should not survive transpilation; count as 2q
            # equivalents is wrong, so track separately via by_name and
            # raise visibility through neither bucket.
            pass
    return GateCounts(one, two, by_name)
