"""Blocking Python client for the arithmetic service.

Stdlib-only (``http.client``); one connection per call, matching the
server's ``Connection: close`` discipline.  The client maps the
service's HTTP status contract onto typed exceptions so callers can
distinguish "back off and retry" (:class:`BackpressureError`) from
"fix your request" (:class:`RequestRejected`).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Union

from .model import SimRequest, SimResponse

__all__ = [
    "BackpressureError",
    "RequestRejected",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(RuntimeError):
    """Base failure talking to the service; carries the HTTP status."""

    def __init__(
        self, status: int, message: str, body: Optional[dict] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}


class BackpressureError(ServiceError):
    """429: the queue is full — retry after ``retry_after`` seconds."""

    def __init__(
        self, retry_after: float, body: Optional[dict] = None
    ) -> None:
        super().__init__(429, f"queue full, retry after {retry_after}s", body)
        self.retry_after = retry_after


class RequestRejected(ServiceError):
    """400/422: the request is invalid or its circuit failed lint."""

    def __init__(
        self, status: int, details: Any, body: Optional[dict] = None
    ) -> None:
        super().__init__(status, f"rejected: {details}", body)
        self.details = details


class ServiceClient:
    """Synchronous HTTP client bound to one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8777, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport --------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            return resp.status, dict(resp.getheaders()), raw
        finally:
            conn.close()

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, headers, raw = self._request(method, path, body)
        try:
            doc = json.loads(raw.decode() or "null")
        except json.JSONDecodeError:
            doc = {"error": raw.decode(errors="replace")}
        if status == 429:
            retry_after = float(
                headers.get("Retry-After", doc.get("retry_after", 1.0))
            )
            raise BackpressureError(retry_after, doc)
        if status in (400, 422):
            raise RequestRejected(status, doc.get("details", doc.get("error")), doc)
        if status >= 400:
            raise ServiceError(status, doc.get("error", "request failed"), doc)
        return doc

    # -- API --------------------------------------------------------------
    def simulate(
        self,
        request: Union[SimRequest, Dict[str, Any], None] = None,
        **kwargs: Any,
    ) -> SimResponse:
        """Run one simulation; keyword form builds the request inline.

        ``client.simulate(operation="add", n=2, m=3, x=[1], y=[2])``
        """
        if request is None:
            request = SimRequest.from_dict(kwargs)
        elif isinstance(request, dict):
            request = SimRequest.from_dict(request)
        doc = self._json("POST", "/v1/simulate", request.to_dict())
        return SimResponse.from_dict(doc)

    def simulate_with_retry(
        self,
        request: Union[SimRequest, Dict[str, Any]],
        max_attempts: int = 5,
        max_wait: float = 30.0,
    ) -> SimResponse:
        """``simulate`` honouring 429 ``Retry-After`` with a wait cap."""
        waited = 0.0
        for attempt in range(1, max_attempts + 1):
            try:
                return self.simulate(request)
            except BackpressureError as exc:
                if attempt == max_attempts:
                    raise
                delay = min(exc.retry_after, max_wait - waited)
                if delay <= 0:
                    raise
                time.sleep(delay)
                waited += delay
        raise AssertionError("unreachable")

    def health(self) -> Dict[str, Any]:
        """The health document (returned even while draining / 503)."""
        _, _, raw = self._request("GET", "/healthz")
        return json.loads(raw.decode() or "null")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/stats")

    def metrics_text(self) -> str:
        status, _, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics scrape failed")
        return raw.decode()
