"""Blocking Python client for the arithmetic service.

Stdlib-only (``http.client``); one connection per call, matching the
server's ``Connection: close`` discipline.  The client maps the
service's HTTP status contract onto typed exceptions so callers can
distinguish "back off and retry" (:class:`BackpressureError`) from
"fix your request" (:class:`RequestRejected`); every error carries the
server's ``X-Request-Id`` (``.request_id``) for log correlation.

Sweeps: :meth:`ServiceClient.submit_sweep` drives the chunked
``/v1/sweep`` stream and yields :class:`SweepPartial` objects as cells
complete server-side — with transparent resume: on a dropped
connection or a backpressured cell the client re-POSTs only the rates
it has not yet received, honouring ``Retry-After``.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .model import SimRequest, SimResponse

__all__ = [
    "BackpressureError",
    "RequestRejected",
    "ServiceClient",
    "ServiceError",
    "SweepPartial",
]


class ServiceError(RuntimeError):
    """Base failure talking to the service; carries the HTTP status."""

    def __init__(
        self, status: int, message: str, body: Optional[dict] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}
        #: The server's ``X-Request-Id`` when the response carried one.
        self.request_id: Optional[str] = None


class BackpressureError(ServiceError):
    """429: the queue is full — retry after ``retry_after`` seconds."""

    def __init__(
        self, retry_after: float, body: Optional[dict] = None
    ) -> None:
        super().__init__(429, f"queue full, retry after {retry_after}s", body)
        self.retry_after = retry_after


class RequestRejected(ServiceError):
    """400/422: the request is invalid or its circuit failed lint."""

    def __init__(
        self, status: int, details: Any, body: Optional[dict] = None
    ) -> None:
        super().__init__(status, f"rejected: {details}", body)
        self.details = details


@dataclass
class SweepPartial:
    """One streamed sweep-cell result (or its terminal error)."""

    error_rate: float
    content_key: str
    response: Optional[SimResponse] = None
    error: Optional[Dict[str, Any]] = None
    request_id: str = ""
    #: 1-based resume attempt that produced this partial.
    attempt: int = 1

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class _SweepProgress:
    """Mutable cursor shared between resume attempts."""

    remaining: List[float] = field(default_factory=list)
    retry_after: float = 1.0
    request_id: str = ""


class ServiceClient:
    """Synchronous HTTP client bound to one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8777, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport --------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            return resp.status, dict(resp.getheaders()), raw
        finally:
            conn.close()

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, headers, raw = self._request(method, path, body)
        try:
            doc = json.loads(raw.decode() or "null")
        except json.JSONDecodeError:
            doc = {"error": raw.decode(errors="replace")}
        error = self._error_for(status, headers, doc)
        if error is not None:
            raise error
        return doc

    @staticmethod
    def _error_for(
        status: int, headers: Dict[str, str], doc: Dict[str, Any]
    ) -> Optional[ServiceError]:
        """Map an HTTP failure onto the typed exception, tagged with
        the server's request id; ``None`` for success statuses."""
        if status < 400:
            return None
        error: ServiceError
        if status == 429:
            retry_after = float(
                headers.get("Retry-After", doc.get("retry_after", 1.0))
            )
            error = BackpressureError(retry_after, doc)
        elif status in (400, 422):
            error = RequestRejected(
                status, doc.get("details", doc.get("error")), doc
            )
        else:
            error = ServiceError(
                status, doc.get("error", "request failed"), doc
            )
        error.request_id = headers.get("X-Request-Id")
        return error

    # -- API --------------------------------------------------------------
    def simulate(
        self,
        request: Union[SimRequest, Dict[str, Any], None] = None,
        **kwargs: Any,
    ) -> SimResponse:
        """Run one simulation; keyword form builds the request inline.

        ``client.simulate(operation="add", n=2, m=3, x=[1], y=[2])``
        """
        if request is None:
            request = SimRequest.from_dict(kwargs)
        elif isinstance(request, dict):
            request = SimRequest.from_dict(request)
        doc = self._json("POST", "/v1/simulate", request.to_dict())
        return SimResponse.from_dict(doc)

    def simulate_with_retry(
        self,
        request: Union[SimRequest, Dict[str, Any]],
        max_attempts: int = 5,
        max_wait: float = 30.0,
    ) -> SimResponse:
        """``simulate`` honouring 429 ``Retry-After`` with a wait cap."""
        waited = 0.0
        for attempt in range(1, max_attempts + 1):
            try:
                return self.simulate(request)
            except BackpressureError as exc:
                if attempt == max_attempts:
                    raise
                delay = min(exc.retry_after, max_wait - waited)
                if delay <= 0:
                    raise
                time.sleep(delay)
                waited += delay
        raise AssertionError("unreachable")

    # -- sweeps -----------------------------------------------------------
    def submit_sweep(
        self,
        base: Union[SimRequest, Dict[str, Any]],
        rates: Sequence[float],
        max_attempts: int = 5,
        max_wait: float = 60.0,
    ) -> Iterator[SweepPartial]:
        """Stream a multi-cell sweep; yields cells in completion order.

        ``base`` is the cell template (its ``error_rate`` is ignored);
        ``rates`` the per-cell error rates.  Resumes transparently: a
        dropped stream or a 429 (whole sweep or single cell) re-POSTs
        the not-yet-delivered rates after honouring ``Retry-After``,
        up to ``max_attempts`` passes within a ``max_wait`` seconds
        sleep budget.  Non-retryable per-cell failures (e.g. a cell
        that exhausted server-side execution attempts) are yielded as
        ``SweepPartial(error=...)`` and not retried.
        """
        if isinstance(base, dict):
            base = SimRequest.from_dict(base)
        progress = _SweepProgress(
            remaining=list(dict.fromkeys(float(r) for r in rates))
        )
        if not progress.remaining:
            return
        waited = 0.0
        last_error: Optional[ServiceError] = None
        for attempt in range(1, max_attempts + 1):
            try:
                yield from self._stream_attempt(base, progress, attempt)
                last_error = None
            except BackpressureError as exc:
                progress.retry_after = max(progress.retry_after, exc.retry_after)
                last_error = exc
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
                json.JSONDecodeError,
            ) as exc:
                # Transport drop mid-stream: everything already yielded
                # stays delivered; resume with the rest.
                last_error = ServiceError(0, f"stream dropped: {exc}")
                last_error.request_id = progress.request_id or None
            if not progress.remaining:
                return
            if attempt == max_attempts:
                break
            delay = min(progress.retry_after, max_wait - waited)
            if delay < 0:
                break
            time.sleep(delay)
            waited += delay
        if last_error is not None:
            raise last_error
        error = ServiceError(
            0,
            f"sweep incomplete after {max_attempts} attempts "
            f"({len(progress.remaining)} cells undelivered)",
        )
        error.request_id = progress.request_id or None
        raise error

    def _stream_attempt(
        self,
        base: SimRequest,
        progress: _SweepProgress,
        attempt: int,
    ) -> Iterator[SweepPartial]:
        """One POST of the remaining rates, yielding delivered cells."""
        spec = {"base": base.to_dict(), "rates": list(progress.remaining)}
        spec["base"].pop("error_rate", None)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST",
                "/v1/sweep",
                body=json.dumps(spec),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            headers = dict(resp.getheaders())
            progress.request_id = headers.get("X-Request-Id", "")
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode() or "null")
                except json.JSONDecodeError:
                    doc = {"error": raw.decode(errors="replace")}
                error = self._error_for(resp.status, headers, doc)
                assert error is not None
                raise error
            # http.client decodes the chunked framing transparently;
            # each readline() is one JSON document.
            while True:
                line = resp.readline()
                if not line:
                    return
                doc = json.loads(line)
                if "cell" not in doc:
                    continue  # header / done lines
                rate = float(doc["cell"]["error_rate"])
                error = doc.get("error")
                if error is not None and int(error.get("status", 0)) in (
                    429,
                    503,
                ):
                    # Retryable cell: keep its rate for the next pass.
                    progress.retry_after = max(
                        progress.retry_after,
                        float(error.get("retry_after", 1.0)),
                    )
                    continue
                if rate in progress.remaining:
                    progress.remaining.remove(rate)
                if error is not None:
                    yield SweepPartial(
                        error_rate=rate,
                        content_key=str(doc["cell"].get("content_key", "")),
                        error=dict(error),
                        request_id=progress.request_id,
                        attempt=attempt,
                    )
                    continue
                yield SweepPartial(
                    error_rate=rate,
                    content_key=str(doc["cell"].get("content_key", "")),
                    response=SimResponse.from_dict(doc["response"]),
                    request_id=progress.request_id,
                    attempt=attempt,
                )
        finally:
            conn.close()

    def health(self) -> Dict[str, Any]:
        """The health document (returned even while draining / 503)."""
        _, _, raw = self._request("GET", "/healthz")
        return json.loads(raw.decode() or "null")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/stats")

    def metrics_text(self) -> str:
        status, _, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics scrape failed")
        return raw.decode()
