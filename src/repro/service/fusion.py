"""Cross-request fusion gate: micro-batched multi-tenant execution.

The paper's workload at fleet scale is thousands of near-identical
sweep requests — the same QFA/QFM circuit family at different error
rates — and :mod:`repro.sim.batch` already fuses such work into shared
state buffers when it arrives as one call.  This module closes the gap
at the service front door: eligible requests (see
:func:`repro.service.executor.fusion_eligible`) are *held* for a
bounded window instead of dispatched individually, then executed as
one :func:`repro.sim.batch.run_request_tasks` pass per circuit-family
group, so concurrent tenants share chunks, kernel caches, and
error-configuration dedup.

Correctness contract: fusion is **bit-invisible per request**.  Every
request's task draws from its own ``(seed, content_key)`` stream in
the scheduler's fixed per-task order, so the counts a request receives
are identical whether it ran alone (per-request dedup path) or fused
with a hundred neighbours — batch membership and chunk geometry never
leak into results.  The sanitizer-trace parity tests pin this.

Fairness: admission into a flush is deficit-round-robin (DRR) over
tenants.  Each flush credits every backlogged tenant ``quantum``
cost units (cost = requested shots) and serves head-of-line requests
while their cost fits the tenant's accumulated deficit — so a tenant
spraying thousand-cell sweeps gets throughput proportional to its
share, not to its queue depth, and interactive single-shot tenants
keep their latency.  A tenant that empties its queue forfeits its
residual deficit (standard DRR), and a progress guard always serves
the globally oldest request when no deficit suffices.

Scheduling knobs (env, read at construction; ctor args override):

* ``REPRO_FUSION_WINDOW_MS``  — hold window in ms; ``0`` (default)
  disables the gate entirely (knobs-off byte-parity with PR 4).
* ``REPRO_FUSION_MIN_BATCH``  — early-flush once any group has this
  many pending requests (default 8).
* ``REPRO_FUSION_MAX_BATCH``  — per-flush request cap (default 64).
* ``REPRO_FUSION_QUANTUM``    — DRR credit per tenant per flush, in
  shots (default 4096).
* ``REPRO_FUSION_MAX_PENDING`` — gate backlog bound; beyond it
  :class:`FusionSaturated` maps to HTTP 429 (default 1024).

The gate holds *eligible* work only and is deliberately **not**
counted against the scheduler's interactive backlog: a deep fusion
queue must not starve admission of one-off requests that bypass it.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..runtime.envutil import env_float, env_int
from .cache import ResultCache
from .executor import SimulationExecutor
from .metrics import ServiceMetrics
from .model import SimRequest

__all__ = [
    "FusionGate",
    "FusionSaturated",
    "fusion_stats",
    "reset_fusion_stats",
]


class FusionSaturated(Exception):
    """The fusion gate's pending bound is full — back off."""

    def __init__(self, depth: int) -> None:
        super().__init__(f"fusion gate full ({depth} pending)")
        self.depth = depth


# ---------------------------------------------------------------------------
# Process-wide stats (mirrored by /stats and repro-arith cache-stats)
# ---------------------------------------------------------------------------

class _FusionStats:
    """Cumulative fusion counters; lock-guarded like ``_SchedulerStats``."""

    __slots__ = (
        "_lock", "admitted", "executed", "fused", "batches",
        "batch_requests", "failures", "cancelled", "rejected",
        "fallbacks", "_tenants",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._zero()

    def _zero(self) -> None:
        self.admitted = 0
        self.executed = 0
        self.fused = 0
        self.batches = 0
        self.batch_requests = 0
        self.failures = 0
        self.cancelled = 0
        self.rejected = 0
        self.fallbacks = 0
        self._tenants: Dict[str, Dict[str, float]] = {}

    def reset(self) -> None:
        with self._lock:
            self._zero()

    def note_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    def note_batch(self, size: int, failed: bool = False) -> None:
        with self._lock:
            self.batches += 1
            self.batch_requests += size
            self.executed += size
            if size > 1:
                self.fused += size
            if failed:
                self.failures += size

    def note_served(self, tenant: str, cost: float) -> None:
        with self._lock:
            row = self._tenants.setdefault(
                tenant, {"served_requests": 0.0, "served_cost": 0.0}
            )
            row["served_requests"] += 1.0
            row["served_cost"] += cost

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "admitted": self.admitted,
                "executed": self.executed,
                "fused_requests": self.fused,
                "batches": self.batches,
                "batch_requests": self.batch_requests,
                "failures": self.failures,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "hit_rate": (
                    self.fused / self.executed if self.executed else 0.0
                ),
                "batch_occupancy": (
                    self.batch_requests / self.batches
                    if self.batches
                    else 0.0
                ),
                "tenants": {
                    t: dict(row)
                    for t, row in sorted(self._tenants.items())
                },
            }


_STATS = _FusionStats()


def fusion_stats() -> Dict[str, Any]:
    """Process-wide cumulative fusion-gate statistics."""
    return _STATS.snapshot()


def reset_fusion_stats() -> None:
    """Zero the counters (tests, fresh benchmark runs)."""
    _STATS.reset()


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

class _Entry:
    """One pending request inside the gate."""

    __slots__ = (
        "request", "key", "tenant", "group", "cost", "future",
        "enqueued_at", "waiters", "seq",
    )

    def __init__(
        self,
        request: SimRequest,
        key: str,
        future: "asyncio.Future[Dict[str, Any]]",
        seq: int,
    ) -> None:
        self.request = request
        self.key = key
        self.tenant = request.tenant
        # Coarse circuit-family proxy; the scheduler regroups by the
        # exact CompiledProgram.fusion_key internally, so a proxy that
        # over-merges costs nothing and never contaminates results.
        self.group = (
            request.operation,
            request.n,
            request.m,
            request.depth,
            request.error_axis,
            request.convention,
        )
        self.cost = float(max(1, request.shots))
        self.future = future
        self.enqueued_at = time.monotonic()
        self.waiters = 1
        self.seq = seq


def _consume_exception(future: "asyncio.Future[Dict[str, Any]]") -> None:
    # Results may outlive their waiters (a client that disconnected
    # after flush); retrieving the exception here keeps asyncio's
    # "exception was never retrieved" warning out of the logs.
    if not future.cancelled():
        future.exception()


class FusionGate:
    """Holds eligible requests briefly, flushes them as fused batches.

    All state lives on the event loop (no locks); the only cross-thread
    artefacts are the process-wide :data:`_STATS` counters.  See the
    module docstring for the scheduling policy.
    """

    def __init__(
        self,
        executor: SimulationExecutor,
        metrics: Optional[ServiceMetrics] = None,
        cache: Optional[ResultCache] = None,
        window_ms: Optional[float] = None,
        min_batch: Optional[int] = None,
        max_batch: Optional[int] = None,
        quantum: Optional[float] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        self.executor = executor
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = cache
        self.window_ms = (
            env_float("REPRO_FUSION_WINDOW_MS", 0.0, minimum=0.0)
            if window_ms is None
            else float(window_ms)
        )
        self.min_batch = (
            env_int("REPRO_FUSION_MIN_BATCH", 8, minimum=1)
            if min_batch is None
            else int(min_batch)
        )
        self.max_batch = (
            env_int("REPRO_FUSION_MAX_BATCH", 64, minimum=1)
            if max_batch is None
            else int(max_batch)
        )
        self.quantum = (
            env_float("REPRO_FUSION_QUANTUM", 4096.0, minimum=1.0)
            if quantum is None
            else float(quantum)
        )
        self.max_pending = (
            env_int("REPRO_FUSION_MAX_PENDING", 1024, minimum=1)
            if max_pending is None
            else int(max_pending)
        )
        #: Called with each entry's content key once its batch settles;
        #: the scheduler registers its inflight-map cleanup here.
        self.done_hooks: List[Callable[[str], None]] = []
        self._queues: Dict[str, Deque[_Entry]] = {}
        self._deficit: Dict[str, float] = {}
        self._by_key: Dict[str, _Entry] = {}
        self._group_counts: Dict[tuple, int] = {}
        self._depth = 0
        self._seq = 0
        self._draining = False
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._group_tasks: "set[asyncio.Task[None]]" = set()

    @property
    def enabled(self) -> bool:
        """The gate only engages with a positive hold window."""
        return self.window_ms > 0.0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the flush loop (call from inside the event loop)."""
        if self._task is not None or not self.enabled:
            return
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(
            self._loop(), name="repro-fusion-gate"
        )

    def close(self) -> None:
        """Stop holding windows: everything pending flushes at once."""
        self._draining = True
        if self._wake is not None:
            self._wake.set()

    async def stop(self) -> None:
        """Cancel the flush loop, flush leftovers, await open batches."""
        self._draining = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while self._depth:
            self._flush()
        pending = list(self._group_tasks)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- introspection ----------------------------------------------------
    def depth(self) -> int:
        return self._depth

    def tenant_deficits(self) -> Dict[str, float]:
        """Live DRR deficits (cost units each backlogged tenant holds)."""
        return dict(sorted(self._deficit.items()))

    def describe(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "window_ms": self.window_ms,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "quantum": self.quantum,
            "max_pending": self.max_pending,
            "pending": self._depth,
            "pending_groups": sum(
                1 for c in self._group_counts.values() if c
            ),
            "tenant_pending": {
                t: len(q) for t, q in sorted(self._queues.items()) if q
            },
            "tenant_deficits": self.tenant_deficits(),
        }

    # -- admission --------------------------------------------------------
    def enqueue(self, request: SimRequest) -> "asyncio.Future[Dict[str, Any]]":
        """Queue one eligible request; resolves with its result payload.

        Raises :class:`FusionSaturated` past the pending bound.  The
        caller owns one waiter reference; coalescers add theirs via
        :meth:`retain` and everyone returns them via :meth:`release`
        on cancellation.
        """
        if self._depth >= self.max_pending:
            _STATS.note_rejected()
            self.metrics.inc("fusion_rejected_total")
            raise FusionSaturated(self._depth)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        future.add_done_callback(_consume_exception)
        self._seq += 1
        entry = _Entry(request, request.content_key(), future, self._seq)
        self._queues.setdefault(entry.tenant, deque()).append(entry)
        self._by_key[entry.key] = entry
        self._group_counts[entry.group] = (
            self._group_counts.get(entry.group, 0) + 1
        )
        self._depth += 1
        _STATS.note_admitted()
        self.metrics.inc("fusion_requests_total")
        if self._wake is not None:
            self._wake.set()
        return future

    def retain(self, key: str) -> bool:
        """Add one waiter to a *pending* entry (coalesced duplicate)."""
        entry = self._by_key.get(key)
        if entry is None:
            return False
        entry.waiters += 1
        return True

    def release(self, key: str) -> bool:
        """Drop one waiter; ``True`` if the entry was abandoned.

        An entry whose last waiter cancels *before* its flush is
        removed from the queue and its future cancelled — nobody wants
        the result, so the batch must not carry it.  Post-flush the
        entry is out of :attr:`_by_key` and this is a no-op: running
        batches always complete (their results are cached for the
        retry the disconnected client will send).
        """
        entry = self._by_key.get(key)
        if entry is None:
            return False
        entry.waiters -= 1
        if entry.waiters > 0:
            return False
        self._by_key.pop(key, None)
        self._forget(entry)
        queue = self._queues.get(entry.tenant)
        if queue is not None:
            try:
                queue.remove(entry)
            except ValueError:
                pass
            if not queue:
                self._queues.pop(entry.tenant, None)
                self._deficit.pop(entry.tenant, None)
        if not entry.future.done():
            entry.future.cancel()
        _STATS.note_cancelled()
        self.metrics.inc("fusion_cancelled_total")
        return True

    def _forget(self, entry: _Entry) -> None:
        self._depth -= 1
        count = self._group_counts.get(entry.group, 0) - 1
        if count > 0:
            self._group_counts[entry.group] = count
        else:
            self._group_counts.pop(entry.group, None)

    # -- flush policy -----------------------------------------------------
    def _flush_due(self) -> bool:
        if self._draining:
            return True
        if self._depth >= self.max_batch:
            return True
        return any(
            c >= self.min_batch for c in self._group_counts.values()
        )

    async def _loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._depth == 0:
                continue
            deadline = time.monotonic() + self.window_ms / 1000.0
            while not self._flush_due():
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except asyncio.TimeoutError:
                    break
                self._wake.clear()
            self._flush()
            if self._depth and self._wake is not None:
                # Leftovers past the per-flush cap open the next window.
                self._wake.set()

    def _select(self) -> List[_Entry]:
        """One DRR round: credit every backlogged tenant, serve heads."""
        popped: List[_Entry] = []
        tenants = sorted(t for t, q in self._queues.items() if q)
        for tenant in tenants:
            queue = self._queues[tenant]
            if not queue:
                continue
            self._deficit[tenant] = (
                self._deficit.get(tenant, 0.0) + self.quantum
            )
            while (
                queue
                and len(popped) < self.max_batch
                and queue[0].cost <= self._deficit[tenant]
            ):
                entry = queue.popleft()
                self._deficit[tenant] -= entry.cost
                popped.append(entry)
            if not queue:
                # Standard DRR: an emptied queue forfeits its residue
                # (deficits only accumulate while work is waiting).
                self._queues.pop(tenant, None)
                self._deficit.pop(tenant, None)
        if not popped and self._depth:
            # Progress guard: a request costlier than any accumulated
            # deficit still gets served — oldest first, and the lucky
            # tenant pays by forfeiting its deficit.
            oldest = min(
                (q[0] for q in self._queues.values() if q),
                key=lambda e: e.seq,
            )
            self._queues[oldest.tenant].remove(oldest)
            if not self._queues[oldest.tenant]:
                self._queues.pop(oldest.tenant, None)
            self._deficit.pop(oldest.tenant, None)
            popped.append(oldest)
        return popped

    def _flush(self) -> None:
        selected = self._select()
        if not selected:
            return
        now = time.monotonic()
        groups: Dict[tuple, List[_Entry]] = {}
        for entry in selected:
            self._by_key.pop(entry.key, None)
            self._forget(entry)
            self.metrics.observe(
                "fusion_window_wait", now - entry.enqueued_at
            )
            _STATS.note_served(entry.tenant, entry.cost)
            groups.setdefault(entry.group, []).append(entry)
        for entries in groups.values():
            task = asyncio.create_task(self._run_group(entries))
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)

    async def _run_group(self, entries: List[_Entry]) -> None:
        requests = [entry.request for entry in entries]
        try:
            results = await self.executor.run_batch(requests)
        except asyncio.CancelledError:
            for entry in entries:
                if not entry.future.done():
                    entry.future.cancel()
            raise
        except Exception as exc:  # noqa: BLE001 — surfaced via futures
            _STATS.note_batch(len(entries), failed=True)
            self.metrics.inc(
                "fusion_batches_failed_total",
                labels={"error": type(exc).__name__},
            )
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(exc)
        else:
            _STATS.note_batch(len(entries))
            self.metrics.inc("fusion_batches_total")
            for entry, payload in zip(entries, results):
                if self.cache is not None:
                    self.cache.put(entry.key, payload)
                if not entry.future.done():
                    entry.future.set_result(payload)
        finally:
            for entry in entries:
                for hook in self.done_hooks:
                    hook(entry.key)
