"""Asyncio-streams HTTP/JSON front end for the arithmetic service.

Stdlib-only: a minimal HTTP/1.1 implementation over
``asyncio.start_server`` — enough protocol for the blocking client,
curl, and a Prometheus scraper, with ``Connection: close`` semantics
per request.

Endpoints
---------
``POST /v1/simulate``  — body: a :class:`~repro.service.model.SimRequest`
    JSON object.  200 with a ``SimResponse`` JSON body; 400 on schema
    violations; 422 when the circuit fails static analysis; 429 +
    ``Retry-After`` under backpressure; 500 when every execution
    attempt failed; 503 while draining.
``POST /v1/sweep``  — body: a :class:`~repro.service.model.SweepRequest`
    JSON object (one base request + a list of error rates).  Streams
    per-cell partial results as chunked JSON-lines
    (``application/x-ndjson``): one header line, one line per cell *in
    completion order*, one trailing ``done`` line — so adaptive
    early-stoppers can act on partials.  Pre-stream failures use the
    same status codes as ``/v1/simulate``; per-cell failures ride the
    stream as ``error`` lines.  A mid-stream client disconnect cancels
    the not-yet-executed cells without touching batches already
    running.
``POST /v1/work``  — a fabric work unit (see :mod:`repro.service.work`
    and :mod:`repro.fabric`).  200 with per-cell results; 400 on
    malformed/skewed payloads; 500 on execution failure (retryable
    from the coordinator's view); 503 while draining.
``GET /healthz``  — liveness and drain state.
``GET /stats``    — JSON: queue, executor, result-cache, compile-cache,
    kernel-cache, fusion-gate counters plus latency summaries.
``GET /metrics``  — Prometheus text exposition.

Every response carries an ``X-Request-Id`` header (pid + monotone
sequence — no clock, no RNG) for log correlation; the client surfaces
it on errors.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .work import WorkHandler

from .cache import ResultCache
from .executor import (
    CircuitRejected,
    ExecutionFailed,
    SimulationExecutor,
    lint_gate,
)
from .fusion import FusionGate, fusion_stats
from .metrics import ServiceMetrics
from .model import (
    RequestValidationError,
    SimRequest,
    SimResponse,
    SweepRequest,
)
from .scheduler import AdmissionError, JobScheduler
from .stats import cache_stats_snapshot

__all__ = ["ArithmeticService", "ServerThread"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any valid request
#: Work units carry a full sweep config + operand instances per request
#: (deliberate wire redundancy; see repro.fabric.wire) — allow more.
_MAX_WORK_BODY = 8 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ArithmeticService:
    """The long-lived service: scheduler + executor + HTTP front end."""

    def __init__(
        self,
        executor: Optional[SimulationExecutor] = None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        max_queue: int = 256,
        concurrency: int = 4,
        lint_requests: bool = True,
        work: Optional["WorkHandler"] = None,
        fusion: Optional[FusionGate] = None,
    ) -> None:
        from .work import WorkHandler

        self.work = work if work is not None else WorkHandler()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.executor = executor if executor is not None else SimulationExecutor(
            workers=0, concurrency=concurrency
        )
        self.cache = cache if cache is not None else ResultCache()
        # Default gate reads the REPRO_FUSION_* knobs; with
        # REPRO_FUSION_WINDOW_MS unset/0 it is inert and every request
        # takes the per-request path, byte-identically to a build
        # without the gate.
        self.fusion = fusion if fusion is not None else FusionGate(
            self.executor, metrics=self.metrics, cache=self.cache
        )
        # An externally built gate (repro-serve flags) still shares the
        # service's registry and result cache.
        self.fusion.metrics = self.metrics
        if self.fusion.cache is None:
            self.fusion.cache = self.cache
        self.scheduler = JobScheduler(
            self.executor,
            cache=self.cache,
            metrics=self.metrics,
            max_queue=max_queue,
            concurrency=concurrency,
            fusion=self.fusion,
        )
        self.lint_requests = lint_requests
        self.started_at = time.monotonic()
        self.draining = False
        #: Stats snapshot flushed by a graceful shutdown (None until then).
        self.final_stats: Optional[Dict[str, Any]] = None
        self._inflight_http = 0
        self._request_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics.register_gauge(
            "result_cache_bytes", lambda: self.cache.total_bytes
        )
        self.metrics.register_gauge(
            "inflight_requests", lambda: self._inflight_http
        )
        # Batched-trajectory-scheduler efficiency (process-wide; only
        # moves when executions run in-process or with dedup enabled).
        from ..sim.batch import scheduler_stats

        self.metrics.register_gauge(
            "trajectory_dedup_ratio",
            lambda: scheduler_stats()["dedup_ratio"],
        )
        self.metrics.register_gauge(
            "trajectory_batch_occupancy",
            lambda: scheduler_stats()["batch_occupancy"],
        )
        self.metrics.register_gauge(
            "trajectories_spent_total",
            lambda: scheduler_stats()["trajectories_sampled"],
        )
        # Per-backend kernel-cache traffic: one gauge per (tier, field)
        # so mixed-precision traffic (numpy64 vs numpy32 requests, plus
        # the dtype-independent "shared" pool) is observable.
        from ..sim.program import kernel_cache_stats

        def _kernel_tier_gauge(tier: str, field: str) -> Callable[[], float]:
            def read() -> float:
                by_backend = kernel_cache_stats()["by_backend"]
                assert isinstance(by_backend, dict)
                return float(by_backend.get(tier, {}).get(field, 0))

            return read

        for tier in ("numpy64", "numpy32", "shared"):
            for field in ("hits", "misses", "bytes"):
                self.metrics.register_gauge(
                    f"kernel_cache_{tier}_{field}",
                    _kernel_tier_gauge(tier, field),
                )
        # Fusion-gate observability: hit rate / occupancy come from the
        # process-wide counters, depth and deficits from the live gate.
        # Window-wait p50/p99 ride the "fusion_window_wait" histogram.
        self.metrics.register_gauge(
            "fusion_hit_rate", lambda: fusion_stats()["hit_rate"]
        )
        self.metrics.register_gauge(
            "fusion_batch_occupancy",
            lambda: fusion_stats()["batch_occupancy"],
        )
        self.metrics.register_gauge(
            "fusion_pending", lambda: float(self.fusion.depth())
        )
        self.metrics.register_labeled_gauge(
            "fusion_tenant_deficit", "tenant", self.fusion.tenant_deficits
        )
        self.metrics.register_labeled_gauge(
            "fusion_tenant_served_cost",
            "tenant",
            lambda: {
                tenant: row["served_cost"]
                for tenant, row in fusion_stats()["tenants"].items()
            },
        )

    # -- lifecycle --------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting, optionally drain, then close.

        A graceful (``drain=True``) shutdown finishes the work already
        accepted before the listener closes: new requests get 503 the
        moment ``draining`` flips, the scheduler queue drains, and then
        in-flight HTTP requests (including fabric work units executing
        off-loop) get the rest of the ``timeout`` budget to write their
        responses.  The final stats snapshot is flushed to
        :attr:`final_stats` so callers can log it after the loop dies.
        """
        self.draining = True
        deadline = time.monotonic() + timeout
        self.scheduler.close()
        if drain:
            await self.scheduler.drain(timeout=timeout)
            while (
                self._inflight_http > 0 and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.02)
        self.final_stats = self.stats()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing ----------------------------------------------------
    def _next_request_id(self) -> str:
        """Correlation id: pid + monotone counter (no clock, no RNG)."""
        self._request_seq += 1
        return f"{os.getpid():x}-{self._request_seq:08x}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inflight_http += 1
        self.metrics.note_inflight(self._inflight_http)
        t0 = time.perf_counter()
        rid = self._next_request_id()
        streamed = False
        status, headers, payload = 500, {}, b""
        try:
            method, path, body = await self._read_request(reader)
            if path.split("?", 1)[0] == "/v1/sweep":
                early = await self._handle_sweep(
                    method, body, reader, writer, rid
                )
                if early is None:
                    streamed, status = True, 200
                else:
                    status, headers, payload = early
            else:
                status, headers, payload = await self._route(
                    method, path, body
                )
        except asyncio.IncompleteReadError:
            status, headers, payload = 400, {}, _err("truncated request")
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            status, headers, payload = 500, {}, _err(
                f"{type(exc).__name__}: {exc}"
            )
        try:
            if not streamed:
                headers.setdefault("X-Request-Id", rid)
                await self._write_response(writer, status, headers, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._inflight_http -= 1
            self.metrics.observe("total", time.perf_counter() - t0)
            self.metrics.inc(
                "http_requests_total", labels={"status": str(status)}
            )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(request_line, None)
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        from ..fabric.wire import WORK_PATH

        limit = (
            _MAX_WORK_BODY
            if path.split("?", 1)[0] == WORK_PATH
            else _MAX_BODY
        )
        if content_length > limit:
            raise ValueError(f"body of {content_length} bytes exceeds limit")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: Dict[str, str],
        payload: bytes,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        base.setdefault("Content-Type", "application/json")
        base.update(headers)
        head.extend(f"{k}: {v}" for k, v in base.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- routing ----------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        from ..fabric.wire import WORK_PATH

        path = path.split("?", 1)[0]
        if path == "/v1/simulate":
            if method != "POST":
                return 405, {"Allow": "POST"}, _err("use POST")
            return await self._handle_simulate(body)
        if path == WORK_PATH:
            if method != "POST":
                return 405, {"Allow": "POST"}, _err("use POST")
            if self.draining:
                return 503, {}, _err("server is draining")
            return await self.work.handle(body)
        if method != "GET":
            return 405, {"Allow": "GET"}, _err("use GET")
        if path == "/healthz":
            return self._handle_healthz()
        if path == "/stats":
            return 200, {}, _json_bytes(self.stats())
        if path == "/metrics":
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4"},
                self.metrics.render_prometheus().encode(),
            )
        return 404, {}, _err(f"no route {path!r}")

    async def _handle_simulate(
        self, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self.draining:
            return 503, {}, _err("server is draining")
        t_recv = time.perf_counter()
        try:
            request = SimRequest.from_dict(json.loads(body.decode() or "null"))
        except RequestValidationError as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _json_bytes(
                {"error": "validation failed", "details": exc.errors}
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _err(f"malformed JSON body: {exc}")
        if self.lint_requests:
            try:
                # Shape-cached after the first request, but the first
                # lint builds + transpiles: keep it off the event loop.
                await asyncio.get_running_loop().run_in_executor(
                    None, lint_gate, request
                )
            except CircuitRejected as exc:
                self.metrics.inc("requests_lint_rejected_total")
                return 422, {}, _json_bytes(
                    {"error": "circuit rejected", "details": exc.messages}
                )
        try:
            payload, source = await self.scheduler.submit(request)
        except AdmissionError as exc:
            return (
                429,
                {"Retry-After": str(max(1, int(round(exc.retry_after))))},
                _json_bytes(
                    {
                        "error": "queue full",
                        "depth": exc.depth,
                        "retry_after": exc.retry_after,
                    }
                ),
            )
        except ExecutionFailed as exc:
            return 500, {}, _json_bytes(
                {
                    "error": "execution failed",
                    "attempts": exc.attempts,
                    "detail": exc.last_error,
                }
            )
        except RuntimeError:
            return 503, {}, _err("server is draining")
        response = SimResponse(**payload)
        response.cache = source
        timings = dict(response.timings_ms)
        timings["total"] = (time.perf_counter() - t_recv) * 1000.0
        response.timings_ms = timings
        self.metrics.inc("requests_served_total", labels={"cache": source})
        return 200, {}, _json_bytes(response.to_dict())

    # -- sweep streaming --------------------------------------------------
    async def _handle_sweep(
        self,
        method: str,
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> Optional[Tuple[int, Dict[str, str], bytes]]:
        """Validate a sweep; stream it if well-formed.

        Returns an ``(status, headers, payload)`` triple for
        pre-stream failures (written by the ordinary response path) or
        ``None`` once the chunked stream has been written.
        """
        if method != "POST":
            return 405, {"Allow": "POST"}, _err("use POST")
        if self.draining:
            return 503, {}, _err("server is draining")
        try:
            sweep = SweepRequest.from_dict(
                json.loads(body.decode() or "null")
            )
        except RequestValidationError as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _json_bytes(
                {"error": "validation failed", "details": exc.errors}
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _err(f"malformed JSON body: {exc}")
        if self.lint_requests:
            try:
                # One lint covers every cell: rates only change noise
                # strength, never the circuit shape the lint inspects.
                await asyncio.get_running_loop().run_in_executor(
                    None, lint_gate, sweep.base
                )
            except CircuitRejected as exc:
                self.metrics.inc("requests_lint_rejected_total")
                return 422, {}, _json_bytes(
                    {"error": "circuit rejected", "details": exc.messages}
                )
        self.metrics.inc("sweep_requests_total")
        await self._stream_sweep(sweep, reader, writer, rid)
        return None

    async def _stream_sweep(
        self,
        sweep: SweepRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> None:
        cells = sweep.cells()
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"X-Request-Id: {rid}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        tasks: Dict["asyncio.Task[Dict[str, Any]]", SimRequest] = {
            asyncio.create_task(self._run_cell(cell)): cell
            for cell in cells
        }
        pending: Set["asyncio.Task[Dict[str, Any]]"] = set(tasks)
        # EOF watchdog: with every cell still queued (e.g. held in the
        # fusion window) no write happens for a while, so a vanished
        # client would otherwise go unnoticed until the next chunk.
        watch: "asyncio.Task[bytes]" = asyncio.create_task(reader.read(1))
        ok = errors = 0
        try:
            await writer.drain()
            await self._write_chunk(
                writer,
                {
                    "sweep": {
                        "cells": len(cells),
                        "tenant": sweep.base.tenant,
                        "request_id": rid,
                    }
                },
            )
            while pending:
                done, _ = await asyncio.wait(
                    pending | {watch}, return_when=asyncio.FIRST_COMPLETED
                )
                if watch in done:
                    raise ConnectionResetError("client closed the stream")
                for task in done:
                    pending.discard(task)
                    doc = await task  # already done; never blocks
                    if "error" in doc:
                        errors += 1
                    else:
                        ok += 1
                    self.metrics.inc("sweep_cells_total")
                    await self._write_chunk(writer, doc)
            await self._write_chunk(
                writer,
                {"done": {"cells": len(cells), "ok": ok, "errors": errors}},
            )
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Mid-stream disconnect: withdraw the cells nobody is
            # waiting for.  Cells already fused into a running batch
            # complete anyway (the batch is shared; its results are
            # cached for the client's retry) — cancellation only
            # removes still-queued work, so an orphaned sweep can
            # never poison neighbours' batches.
            self.metrics.inc("sweep_disconnects_total")
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            watch.cancel()

    @staticmethod
    async def _write_chunk(
        writer: asyncio.StreamWriter, doc: Dict[str, Any]
    ) -> None:
        data = _json_bytes(doc) + b"\n"
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")
        await writer.drain()

    async def _run_cell(self, request: SimRequest) -> Dict[str, Any]:
        """One sweep cell through the scheduler; never raises.

        Failures become ``error`` lines on the stream so one saturated
        cell does not abort the rest of the sweep.
        """
        t0 = time.perf_counter()
        cell = {
            "error_rate": request.error_rate,
            "content_key": request.content_key(),
        }
        try:
            payload, source = await self.scheduler.submit(request)
        except AdmissionError as exc:
            return {
                "cell": cell,
                "error": {
                    "status": 429,
                    "message": "queue full",
                    "retry_after": exc.retry_after,
                },
            }
        except ExecutionFailed as exc:
            return {
                "cell": cell,
                "error": {
                    "status": 500,
                    "message": exc.last_error,
                    "attempts": exc.attempts,
                },
            }
        except RuntimeError:
            return {
                "cell": cell,
                "error": {"status": 503, "message": "server is draining"},
            }
        response = SimResponse(**payload)
        response.cache = source
        timings = dict(response.timings_ms)
        timings["total"] = (time.perf_counter() - t0) * 1000.0
        response.timings_ms = timings
        self.metrics.inc("requests_served_total", labels={"cache": source})
        return {"cell": cell, "response": response.to_dict()}

    def _handle_healthz(self) -> Tuple[int, Dict[str, str], bytes]:
        status = 503 if self.draining else 200
        return status, {}, _json_bytes(
            {
                "status": "draining" if self.draining else "ok",
                "uptime_seconds": time.monotonic() - self.started_at,
                "executor": self.executor.mode,
            }
        )

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document (shared shape with the CLI)."""
        snapshot = cache_stats_snapshot(result_cache=self.cache)
        snapshot.update(
            {
                "uptime_seconds": time.monotonic() - self.started_at,
                "queue": self.scheduler.queue_stats(),
                "executor": self.executor.describe(),
                "metrics": self.metrics.stats_dict(),
                "work": self.work.stats(),
                "fusion": {
                    **self.fusion.describe(),
                    "totals": fusion_stats(),
                },
            }
        )
        return snapshot


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj).encode()


def _err(message: str) -> bytes:
    return _json_bytes({"error": message})


class ServerThread:
    """A service running on a dedicated event-loop thread.

    The test suite, the load-smoke benchmark, and small embedded
    deployments all want a blocking handle: ``with ServerThread() as
    srv: client = ServiceClient(*srv.address)``.
    """

    def __init__(self, service: Optional[ArithmeticService] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service if service is not None else ArithmeticService()
        self._host = host
        self._port = port
        self.address: Tuple[str, int] = ("", 0)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> None:
            self.address = await self.service.start(self._host, self._port)
            self._ready.set()

        try:
            loop.run_until_complete(boot())
            loop.run_forever()
        finally:
            loop.close()
            self._stopped.set()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        async def teardown() -> None:
            await self.service.shutdown(drain=drain, timeout=timeout)
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(teardown(), loop)
        self._stopped.wait(timeout=timeout + 10)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
