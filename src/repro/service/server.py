"""Asyncio-streams HTTP/JSON front end for the arithmetic service.

Stdlib-only: a minimal HTTP/1.1 implementation over
``asyncio.start_server`` — enough protocol for the blocking client,
curl, and a Prometheus scraper, with ``Connection: close`` semantics
per request.

Endpoints
---------
``POST /v1/simulate``  — body: a :class:`~repro.service.model.SimRequest`
    JSON object.  200 with a ``SimResponse`` JSON body; 400 on schema
    violations; 422 when the circuit fails static analysis; 429 +
    ``Retry-After`` under backpressure; 500 when every execution
    attempt failed; 503 while draining.
``POST /v1/work``  — a fabric work unit (see :mod:`repro.service.work`
    and :mod:`repro.fabric`).  200 with per-cell results; 400 on
    malformed/skewed payloads; 500 on execution failure (retryable
    from the coordinator's view); 503 while draining.
``GET /healthz``  — liveness and drain state.
``GET /stats``    — JSON: queue, executor, result-cache, compile-cache,
    kernel-cache counters plus latency summaries.
``GET /metrics``  — Prometheus text exposition.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .work import WorkHandler

from .cache import ResultCache
from .executor import (
    CircuitRejected,
    ExecutionFailed,
    SimulationExecutor,
    lint_gate,
)
from .metrics import ServiceMetrics
from .model import RequestValidationError, SimRequest, SimResponse
from .scheduler import AdmissionError, JobScheduler
from .stats import cache_stats_snapshot

__all__ = ["ArithmeticService", "ServerThread"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any valid request
#: Work units carry a full sweep config + operand instances per request
#: (deliberate wire redundancy; see repro.fabric.wire) — allow more.
_MAX_WORK_BODY = 8 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ArithmeticService:
    """The long-lived service: scheduler + executor + HTTP front end."""

    def __init__(
        self,
        executor: Optional[SimulationExecutor] = None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        max_queue: int = 256,
        concurrency: int = 4,
        lint_requests: bool = True,
        work: Optional["WorkHandler"] = None,
    ) -> None:
        from .work import WorkHandler

        self.work = work if work is not None else WorkHandler()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.executor = executor if executor is not None else SimulationExecutor(
            workers=0, concurrency=concurrency
        )
        self.cache = cache if cache is not None else ResultCache()
        self.scheduler = JobScheduler(
            self.executor,
            cache=self.cache,
            metrics=self.metrics,
            max_queue=max_queue,
            concurrency=concurrency,
        )
        self.lint_requests = lint_requests
        self.started_at = time.monotonic()
        self.draining = False
        #: Stats snapshot flushed by a graceful shutdown (None until then).
        self.final_stats: Optional[Dict[str, Any]] = None
        self._inflight_http = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics.register_gauge(
            "result_cache_bytes", lambda: self.cache.total_bytes
        )
        self.metrics.register_gauge(
            "inflight_requests", lambda: self._inflight_http
        )
        # Batched-trajectory-scheduler efficiency (process-wide; only
        # moves when executions run in-process or with dedup enabled).
        from ..sim.batch import scheduler_stats

        self.metrics.register_gauge(
            "trajectory_dedup_ratio",
            lambda: scheduler_stats()["dedup_ratio"],
        )
        self.metrics.register_gauge(
            "trajectory_batch_occupancy",
            lambda: scheduler_stats()["batch_occupancy"],
        )
        self.metrics.register_gauge(
            "trajectories_spent_total",
            lambda: scheduler_stats()["trajectories_sampled"],
        )
        # Per-backend kernel-cache traffic: one gauge per (tier, field)
        # so mixed-precision traffic (numpy64 vs numpy32 requests, plus
        # the dtype-independent "shared" pool) is observable.
        from ..sim.program import kernel_cache_stats

        def _kernel_tier_gauge(tier: str, field: str) -> Callable[[], float]:
            def read() -> float:
                by_backend = kernel_cache_stats()["by_backend"]
                assert isinstance(by_backend, dict)
                return float(by_backend.get(tier, {}).get(field, 0))

            return read

        for tier in ("numpy64", "numpy32", "shared"):
            for field in ("hits", "misses", "bytes"):
                self.metrics.register_gauge(
                    f"kernel_cache_{tier}_{field}",
                    _kernel_tier_gauge(tier, field),
                )

    # -- lifecycle --------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting, optionally drain, then close.

        A graceful (``drain=True``) shutdown finishes the work already
        accepted before the listener closes: new requests get 503 the
        moment ``draining`` flips, the scheduler queue drains, and then
        in-flight HTTP requests (including fabric work units executing
        off-loop) get the rest of the ``timeout`` budget to write their
        responses.  The final stats snapshot is flushed to
        :attr:`final_stats` so callers can log it after the loop dies.
        """
        self.draining = True
        deadline = time.monotonic() + timeout
        self.scheduler.close()
        if drain:
            await self.scheduler.drain(timeout=timeout)
            while (
                self._inflight_http > 0 and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.02)
        self.final_stats = self.stats()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing ----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inflight_http += 1
        self.metrics.note_inflight(self._inflight_http)
        t0 = time.perf_counter()
        try:
            method, path, body = await self._read_request(reader)
            status, headers, payload = await self._route(method, path, body)
        except asyncio.IncompleteReadError:
            status, headers, payload = 400, {}, _err("truncated request")
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            status, headers, payload = 500, {}, _err(
                f"{type(exc).__name__}: {exc}"
            )
        try:
            await self._write_response(writer, status, headers, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._inflight_http -= 1
            self.metrics.observe("total", time.perf_counter() - t0)
            self.metrics.inc(
                "http_requests_total", labels={"status": str(status)}
            )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(request_line, None)
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        from ..fabric.wire import WORK_PATH

        limit = (
            _MAX_WORK_BODY
            if path.split("?", 1)[0] == WORK_PATH
            else _MAX_BODY
        )
        if content_length > limit:
            raise ValueError(f"body of {content_length} bytes exceeds limit")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: Dict[str, str],
        payload: bytes,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        base.setdefault("Content-Type", "application/json")
        base.update(headers)
        head.extend(f"{k}: {v}" for k, v in base.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- routing ----------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        from ..fabric.wire import WORK_PATH

        path = path.split("?", 1)[0]
        if path == "/v1/simulate":
            if method != "POST":
                return 405, {"Allow": "POST"}, _err("use POST")
            return await self._handle_simulate(body)
        if path == WORK_PATH:
            if method != "POST":
                return 405, {"Allow": "POST"}, _err("use POST")
            if self.draining:
                return 503, {}, _err("server is draining")
            return await self.work.handle(body)
        if method != "GET":
            return 405, {"Allow": "GET"}, _err("use GET")
        if path == "/healthz":
            return self._handle_healthz()
        if path == "/stats":
            return 200, {}, _json_bytes(self.stats())
        if path == "/metrics":
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4"},
                self.metrics.render_prometheus().encode(),
            )
        return 404, {}, _err(f"no route {path!r}")

    async def _handle_simulate(
        self, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self.draining:
            return 503, {}, _err("server is draining")
        t_recv = time.perf_counter()
        try:
            request = SimRequest.from_dict(json.loads(body.decode() or "null"))
        except RequestValidationError as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _json_bytes(
                {"error": "validation failed", "details": exc.errors}
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.inc("requests_invalid_total")
            return 400, {}, _err(f"malformed JSON body: {exc}")
        if self.lint_requests:
            try:
                # Shape-cached after the first request, but the first
                # lint builds + transpiles: keep it off the event loop.
                await asyncio.get_running_loop().run_in_executor(
                    None, lint_gate, request
                )
            except CircuitRejected as exc:
                self.metrics.inc("requests_lint_rejected_total")
                return 422, {}, _json_bytes(
                    {"error": "circuit rejected", "details": exc.messages}
                )
        try:
            payload, source = await self.scheduler.submit(request)
        except AdmissionError as exc:
            return (
                429,
                {"Retry-After": str(max(1, int(round(exc.retry_after))))},
                _json_bytes(
                    {
                        "error": "queue full",
                        "depth": exc.depth,
                        "retry_after": exc.retry_after,
                    }
                ),
            )
        except ExecutionFailed as exc:
            return 500, {}, _json_bytes(
                {
                    "error": "execution failed",
                    "attempts": exc.attempts,
                    "detail": exc.last_error,
                }
            )
        except RuntimeError:
            return 503, {}, _err("server is draining")
        response = SimResponse(**payload)
        response.cache = source
        timings = dict(response.timings_ms)
        timings["total"] = (time.perf_counter() - t_recv) * 1000.0
        response.timings_ms = timings
        self.metrics.inc("requests_served_total", labels={"cache": source})
        return 200, {}, _json_bytes(response.to_dict())

    def _handle_healthz(self) -> Tuple[int, Dict[str, str], bytes]:
        status = 503 if self.draining else 200
        return status, {}, _json_bytes(
            {
                "status": "draining" if self.draining else "ok",
                "uptime_seconds": time.monotonic() - self.started_at,
                "executor": self.executor.mode,
            }
        )

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document (shared shape with the CLI)."""
        snapshot = cache_stats_snapshot(result_cache=self.cache)
        snapshot.update(
            {
                "uptime_seconds": time.monotonic() - self.started_at,
                "queue": self.scheduler.queue_stats(),
                "executor": self.executor.describe(),
                "metrics": self.metrics.stats_dict(),
                "work": self.work.stats(),
            }
        )
        return snapshot


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj).encode()


def _err(message: str) -> bytes:
    return _json_bytes({"error": message})


class ServerThread:
    """A service running on a dedicated event-loop thread.

    The test suite, the load-smoke benchmark, and small embedded
    deployments all want a blocking handle: ``with ServerThread() as
    srv: client = ServiceClient(*srv.address)``.
    """

    def __init__(self, service: Optional[ArithmeticService] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service if service is not None else ArithmeticService()
        self._host = host
        self._port = port
        self.address: Tuple[str, int] = ("", 0)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> None:
            self.address = await self.service.start(self._host, self._port)
            self._ready.set()

        try:
            loop.run_until_complete(boot())
            loop.run_forever()
        finally:
            loop.close()
            self._stopped.set()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        async def teardown() -> None:
            await self.service.shutdown(drain=drain, timeout=timeout)
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(teardown(), loop)
        self._stopped.wait(timeout=timeout + 10)
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
