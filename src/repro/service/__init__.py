"""Quantum-arithmetic-as-a-service: the online serving layer.

The batch harness (:mod:`repro.experiments`) evaluates the paper's
figure grids; this package exposes the same execution stack — compiled
programs, the two-level compile cache, the kernel cache, and the
runtime retry/timeout semantics — as a long-lived asyncio service:

* :mod:`repro.service.model` — typed, schema-validated request /
  response model with per-request deterministic seeding;
* :mod:`repro.service.cache` — content-addressed result cache with a
  TTL and byte budget (``REPRO_RESULT_CACHE_MB`` /
  ``REPRO_RESULT_CACHE_TTL``), mirroring the kernel cache's LRU;
* :mod:`repro.service.scheduler` — bounded priority queue with
  admission control, backpressure, and **request coalescing**
  (concurrent identical requests collapse into one simulation);
* :mod:`repro.service.fusion` — the cross-request fusion gate:
  eligible requests are held for a bounded window
  (``REPRO_FUSION_WINDOW_MS``) and executed as fused micro-batches
  through one :mod:`repro.sim.batch` scheduler pass, with
  deficit-round-robin fairness across tenants — bit-identical per
  request to running alone;
* :mod:`repro.service.executor` — the worker tier (in-process threads
  or a process pool) reusing
  :func:`repro.experiments.runner.build_compiled_program` and the
  supervisor's retry ladder;
* :mod:`repro.service.server` — asyncio-streams HTTP/JSON server with
  ``/v1/simulate``, ``/v1/sweep`` (chunked JSON-lines streaming),
  ``/healthz``, ``/stats`` and Prometheus-text ``/metrics`` endpoints;
* :mod:`repro.service.client` — a blocking Python client (including
  the streaming :meth:`~repro.service.client.ServiceClient.submit_sweep`
  iterator with Retry-After-honouring resume);
* ``repro-serve`` — the console entry point
  (:mod:`repro.service.__main__`).

See ``docs/service.md`` for the protocol and tuning knobs.
"""

from .cache import ResultCache
from .client import (
    BackpressureError,
    RequestRejected,
    ServiceClient,
    ServiceError,
)
from .client import SweepPartial
from .executor import SimulationExecutor, fusion_eligible
from .fusion import FusionGate, fusion_stats, reset_fusion_stats
from .metrics import LatencyHistogram, ServiceMetrics
from .model import (
    RequestValidationError,
    SimRequest,
    SimResponse,
    SweepRequest,
)
from .scheduler import AdmissionError, JobScheduler
from .server import ArithmeticService, ServerThread
from .stats import cache_stats_snapshot, render_cache_stats

__all__ = [
    "AdmissionError",
    "ArithmeticService",
    "BackpressureError",
    "FusionGate",
    "JobScheduler",
    "LatencyHistogram",
    "RequestRejected",
    "RequestValidationError",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SimRequest",
    "SimResponse",
    "SimulationExecutor",
    "SweepPartial",
    "SweepRequest",
    "cache_stats_snapshot",
    "fusion_eligible",
    "fusion_stats",
    "render_cache_stats",
    "reset_fusion_stats",
]
