"""Content-addressed result cache with TTL and a byte budget.

Mirrors the process-wide :class:`~repro.sim.program.KernelCache` LRU
discipline (insertion-ordered dict, evict-oldest under a byte budget)
but adds an expiry wall: noisy-simulation results are only as fresh as
the noise model they were sampled under, so entries age out after
``ttl`` seconds even when the budget has room.

Budget and TTL default from the environment —
``REPRO_RESULT_CACHE_MB`` (default 64) and
``REPRO_RESULT_CACHE_TTL`` seconds (default 600; ``0`` disables
expiry).  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..runtime.envutil import env_float, env_mb_bytes

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU of response payloads keyed by request content."""

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_bytes is None:
            budget_bytes = env_mb_bytes("REPRO_RESULT_CACHE_MB", 64)
        if ttl is None:
            ttl = env_float("REPRO_RESULT_CACHE_TTL", 600, minimum=0.0)
        self.budget_bytes = budget_bytes
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (payload, expires_at, nbytes); dict order is recency.
        self._entries: Dict[str, Tuple[Dict[str, Any], float, int]] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None (miss or expired)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            payload, expires_at, nbytes = entry
            if expires_at <= now:
                del self._entries[key]
                self.total_bytes -= nbytes
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            # Refresh recency (dicts preserve insertion order).
            del self._entries[key]
            self._entries[key] = entry
            return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert ``payload``, evicting the oldest entries over budget."""
        nbytes = _payload_nbytes(payload)
        if nbytes > self.budget_bytes:
            return  # one oversized result must not flush the cache
        expires_at = (
            float("inf") if self.ttl <= 0 else self._clock() + self.ttl
        )
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[2]
            while (
                self.total_bytes + nbytes > self.budget_bytes and self._entries
            ):
                old_key = next(iter(self._entries))
                self.total_bytes -= self._entries.pop(old_key)[2]
                self.evictions += 1
            self._entries[key] = (payload, expires_at, nbytes)
            self.total_bytes += nbytes

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            dead = [
                k for k, (_, exp, _) in self._entries.items() if exp <= now
            ]
            for k in dead:
                self.total_bytes -= self._entries.pop(k)[2]
            self.expirations += len(dead)
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def stats(self) -> Dict[str, Any]:
        """Counters in the same shape as ``kernel_cache_stats``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "entries": len(self._entries),
                "total_bytes": self.total_bytes,
                "budget_bytes": self.budget_bytes,
                "ttl_seconds": self.ttl,
            }


def _payload_nbytes(payload: Dict[str, Any]) -> int:
    """Approximate retained size via the JSON wire encoding."""
    return len(json.dumps(payload, separators=(",", ":")))
