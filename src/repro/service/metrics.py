"""Service observability: counters, gauges, and latency histograms.

Rendered in two shapes: a JSON snapshot for ``/stats`` and the
Prometheus text exposition format (0.0.4) for ``/metrics``.  Histograms
use fixed cumulative buckets (Prometheus convention) and also answer
approximate quantile queries for the stats endpoint and the load-smoke
benchmark.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ServiceMetrics"]

# Seconds; spans sub-millisecond cache hits to multi-second simulations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        idx = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.sum += seconds

    def snapshot(self) -> Tuple[List[int], int, float]:
        with self._lock:
            return list(self._counts), self.count, self.sum

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the ``q`` quantile (0..1)."""
        counts, total, _ = self.snapshot()
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def mean(self) -> float:
        _, total, s = self.snapshot()
        return s / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        _, total, s = self.snapshot()
        return {
            "count": total,
            "sum_seconds": s,
            "mean_seconds": self.mean(),
            "p50_seconds": self.quantile(0.50),
            "p99_seconds": self.quantile(0.99),
        }


class ServiceMetrics:
    """The service's metric registry.

    * ``counters`` — monotonically increasing named totals, with
      optional label sets (e.g. ``requests_total{status="ok"}``);
    * ``gauges`` — callables sampled at render time (queue depth,
      in-flight requests, cache bytes);
    * ``histograms`` — per-stage latency (``queue_wait``, ``execute``,
      ``total``), created on first use.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._labeled_gauges: Dict[
            str, Tuple[str, Callable[[], Dict[str, float]]]
        ] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        #: peak of the ``inflight_requests`` gauge, maintained by the
        #: server; proves sustained concurrency in the load smoke.
        self.peak_inflight = 0

    # -- counters ---------------------------------------------------------
    def inc(
        self,
        name: str,
        amount: int = 1,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def counter_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> int:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            return self._counters.get(key, 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(
                v for (n, _), v in self._counters.items() if n == name
            )

    # -- gauges -----------------------------------------------------------
    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self._gauges[name] = fn

    def register_labeled_gauge(
        self,
        name: str,
        label: str,
        fn: Callable[[], Dict[str, float]],
    ) -> None:
        """A gauge family: ``fn`` yields ``{label_value: gauge_value}``.

        Rendered as ``name{label="value"} x`` per entry (e.g. the
        per-tenant fusion deficit counters), sampled at render time
        like the scalar gauges.
        """
        self._labeled_gauges[name] = (label, fn)

    def note_inflight(self, current: int) -> None:
        with self._lock:
            if current > self.peak_inflight:
                self.peak_inflight = current

    # -- histograms -------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        hist = self.histograms.get(stage)
        if hist is None:
            with self._lock:
                hist = self.histograms.setdefault(stage, LatencyHistogram())
        hist.observe(seconds)

    # -- rendering --------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        with self._lock:
            counters: Dict[str, object] = {}
            for (name, labels), value in sorted(self._counters.items()):
                if labels:
                    label_str = ",".join(f"{k}={v}" for k, v in labels)
                    counters[f"{name}{{{label_str}}}"] = value
                else:
                    counters[name] = value
        return {
            "counters": counters,
            "gauges": {name: fn() for name, fn in self._gauges.items()},
            "labeled_gauges": {
                name: dict(sorted(fn().items()))
                for name, (_, fn) in sorted(self._labeled_gauges.items())
            },
            "latency": {
                stage: hist.as_dict()
                for stage, hist in sorted(self.histograms.items())
            },
            "peak_inflight": self.peak_inflight,
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every metric."""
        ns = self.namespace
        lines: List[str] = []
        with self._lock:
            counter_items = sorted(self._counters.items())
        seen = set()
        for (name, labels), value in counter_items:
            full = f"{ns}_{name}"
            if full not in seen:
                seen.add(full)
                lines.append(f"# TYPE {full} counter")
            if labels:
                label_str = ",".join(f'{k}="{v}"' for k, v in labels)
                lines.append(f"{full}{{{label_str}}} {value}")
            else:
                lines.append(f"{full} {value}")
        for name, fn in self._gauges.items():
            full = f"{ns}_{name}"
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {fn()}")
        for name, (label, lfn) in sorted(self._labeled_gauges.items()):
            full = f"{ns}_{name}"
            lines.append(f"# TYPE {full} gauge")
            for value_label, value in sorted(lfn().items()):
                lines.append(f'{full}{{{label}="{value_label}"}} {value}')
        lines.append(f"# TYPE {ns}_peak_inflight_requests gauge")
        lines.append(f"{ns}_peak_inflight_requests {self.peak_inflight}")
        for stage, hist in sorted(self.histograms.items()):
            full = f"{ns}_latency_{stage}_seconds"
            counts, total, total_sum = hist.snapshot()
            lines.append(f"# TYPE {full} histogram")
            running = 0
            for bound, c in zip(hist.bounds, counts):
                running += c
                lines.append(f'{full}_bucket{{le="{bound}"}} {running}')
            lines.append(f'{full}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{full}_sum {total_sum}")
            lines.append(f"{full}_count {total}")
        return "\n".join(lines) + "\n"
