"""The service's worker tier: compiled-program execution with retries.

One request executes exactly the batch harness's hot path —
:func:`repro.experiments.runner.build_compiled_program` (two-level
compile cache + kernel cache underneath) feeding
:func:`repro.sim.engines.simulate_counts` — wrapped in the runtime
supervisor's recovery semantics: bounded attempts with exponential
backoff, a per-attempt wall-clock timeout, and
``BrokenProcessPool`` respawn with degradation to in-process threads
once the respawn budget is exhausted (mirroring
:class:`repro.runtime.supervisor.Supervisor`).

Determinism: the RNG is rebuilt from the request's seed sequence inside
every attempt, so a retried request replays bit-identically — the
regression tests in ``tests/test_service_seed.py`` pin this.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..experiments.runner import build_compiled_program, noise_model_for
from ..metrics.success import evaluate_instance
from ..runtime import sanitizer
from ..runtime.envutil import env_flag
from ..runtime.supervisor import RetryPolicy
from ..sim.batch import TrajectoryTask, run_request_tasks
from ..sim.engines import DENSITY_MAX_QUBITS, simulate_counts
from .model import RequestValidationError, SimRequest

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from ..lint import LintReport

__all__ = [
    "CircuitRejected",
    "ExecutionFailed",
    "SimulationExecutor",
    "fusion_eligible",
    "lint_gate",
]


class CircuitRejected(ValueError):
    """The request's circuit failed static analysis (lint errors)."""

    def __init__(self, messages: List[str]) -> None:
        super().__init__("; ".join(messages))
        self.messages = messages


class ExecutionFailed(RuntimeError):
    """Every attempt of one request failed; carries the last error."""

    def __init__(self, attempts: int, last_error: str) -> None:
        super().__init__(
            f"simulation failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@lru_cache(maxsize=256)
def _lint_report(
    operation: str, n: int, m: int, depth: Optional[int]
) -> "LintReport":
    """Lint verdict for one circuit shape (operand-independent, cached)."""
    from ..experiments.runner import build_arithmetic_circuit
    from ..lint import LintContext, lint_circuit
    from ..transpile.basis import IBM_BASIS

    circuit = build_arithmetic_circuit(operation, n, m, depth)
    return lint_circuit(circuit, LintContext(basis=IBM_BASIS))


def lint_gate(request: SimRequest) -> None:
    """Admission check: reject requests whose circuit lints with errors.

    The lint runs on the transpiled circuit of the request's *shape*
    (operation, widths, depth) — operands only pick the initial state,
    so the verdict is cached per shape.  Warnings pass; error-severity
    diagnostics reject the request before it ever reaches the queue.
    """
    try:
        report = _lint_report(request.operation, request.n, request.m, request.depth)
    except ValueError as exc:  # unbuildable shape (e.g. bad depth)
        raise CircuitRejected([str(exc)]) from exc
    from ..lint import Severity

    errors = [
        f"{d.rule_id}: {d.message}"
        for d in report.diagnostics
        if d.severity >= Severity.ERROR
    ]
    if errors:
        raise CircuitRejected(errors)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one request end to end (top level: picklable for pools).

    Returns the result-determining slice of the response as plain
    JSON-able values; the server layers cache/queue bookkeeping on top.
    """
    request = SimRequest.from_dict(payload)
    if sanitizer.enabled():
        with sanitizer.capture() as events:
            with sanitizer.trace_scope(request.content_key()):
                result = _execute_payload_inner(request)
        result["sanitizer_events"] = [list(e) for e in events]
        return result
    return _execute_payload_inner(request)


def _execute_payload_inner(request: SimRequest) -> Dict[str, Any]:
    t0 = time.perf_counter()
    method = request.method
    if method == "cut":
        # Fragment evaluation lowers each fragment variant through
        # compile_circuit itself; the full-width compiled program is
        # never built (that is the point — its kernels would be as wide
        # as the statevector we are avoiding).
        from ..experiments.runner import build_arithmetic_circuit

        target: Any = build_arithmetic_circuit(
            request.operation, request.n, request.m, request.depth
        )
        fingerprint = ""
    else:
        program = build_compiled_program(
            request.operation,
            request.n,
            request.m,
            request.depth,
            request.error_axis,
            request.error_rate,
            request.convention,
        )
        target = program
        fingerprint = program.fingerprint
    noise = noise_model_for(
        request.error_axis, request.error_rate, request.convention
    )
    t_compile = time.perf_counter()
    instance = request.instance()
    if noise.is_ideal and method in ("auto", "trajectory"):
        # Mirror the batch runner: an ideal point is exact — never
        # spend trajectories on it (an explicit density/perturbative
        # request is honoured).
        method = "statevector"
    # Fresh stream per attempt: retries and coalesced duplicates replay
    # bit-identically from (seed, content_key).
    rng = np.random.default_rng(request.rng_seed())
    counts = simulate_counts(
        target,
        noise,
        shots=request.shots,
        method=method,
        trajectories=request.trajectories,
        rng=rng,
        initial_state=instance.initial_statevector(),
        # Opt-in error-configuration dedup (exact, but a different —
        # equally valid — random stream than the default path, so it is
        # a deployment-wide switch rather than a per-request knob:
        # toggling it must not split the result cache's key space).
        dedup=env_flag("REPRO_SERVICE_DEDUP", False),
    )
    t_sim = time.perf_counter()
    outcome = evaluate_instance(counts, instance.correct_outcomes())
    correct = sum(counts.get(o) for o in instance.correct_outcomes())
    return {
        "content_key": request.content_key(),
        "counts": {int(k): int(v) for k, v in counts.items()},
        "num_qubits": counts.num_qubits,
        "shots": request.shots,
        "method": counts.method or method,
        "program_fingerprint": fingerprint,
        "seed": request.seed,
        "success": bool(outcome.success),
        "min_diff": int(outcome.min_diff),
        "success_probability": correct / max(1, counts.shots),
        "timings_ms": {
            "compile": (t_compile - t0) * 1000.0,
            "simulate": (t_sim - t_compile) * 1000.0,
        },
    }


def fusion_eligible(request: SimRequest) -> bool:
    """Whether a request may ride the cross-request fusion tier.

    Cheap, request-shape-only screen used at admission: noisy
    trajectory work (explicit, or what ``method="auto"`` will resolve
    to once the width rules out density simulation).  The batch
    executor re-checks against the *compiled program* (Pauli-only
    sites, resolved method) and falls back to the per-request path for
    any survivor that turns out not to fit — eligibility here may
    over-approximate, never under-deliver.
    """
    if request.error_rate <= 0.0:
        return False
    if request.method == "trajectory":
        return True
    return (
        request.method == "auto"
        and request.total_qubits > DENSITY_MAX_QUBITS
    )


def _fused_task_for(request: SimRequest) -> Optional[TrajectoryTask]:
    """Build the request's scheduler task, or ``None`` if not fusable.

    ``None`` means the compiled program refused the trajectory
    scheduler (non-Pauli noise, no noise sites, or ``auto`` resolving
    to an exact method) — the caller then runs the request through the
    ordinary per-request path inside the same batch.
    """
    noise = noise_model_for(
        request.error_axis, request.error_rate, request.convention
    )
    if noise.is_ideal:
        return None
    program = build_compiled_program(
        request.operation,
        request.n,
        request.m,
        request.depth,
        request.error_axis,
        request.error_rate,
        request.convention,
    )
    if not program.pauli_only or program.num_noise_sites == 0:
        return None
    if request.method == "auto" and program.num_qubits <= DENSITY_MAX_QUBITS:
        return None
    return TrajectoryTask(
        key=request.content_key(),
        program=program,
        shots=request.shots,
        trajectories=request.trajectories,
        # Fresh stream from (seed, content_key), exactly as the
        # per-request path builds it — fusion must be bit-invisible.
        rng=np.random.default_rng(request.rng_seed()),
        initial_state=request.instance().initial_statevector(),
    )


def _execute_fused_batch(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Run one micro-batch of requests (top level: picklable for pools).

    All fusable requests share a single
    :func:`repro.sim.batch.run_request_tasks` pass — one chunked state
    buffer per fusion group, kernel caches and error-configuration
    dedup shared across tenants — while requests that compile out of
    the trajectory scheduler fall back to the per-request path inside
    the same call.  Returns ``{"results": [...]}`` with one
    response-shaped payload per request in input order; batch-level
    sanitizer events ride home under ``"sanitizer_events"``.

    Per-request results are bit-identical to running each request
    alone through the dedup path: every task draws from its own
    ``(seed, content_key)`` stream in a fixed order, so batch
    membership and chunk geometry never leak into results.
    """
    if sanitizer.enabled():
        with sanitizer.capture() as events:
            results = _execute_fused_batch_inner(payloads)
        return {
            "results": results,
            "sanitizer_events": [list(e) for e in events],
        }
    return {"results": _execute_fused_batch_inner(payloads)}


def _execute_fused_batch_inner(
    payloads: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    t0 = time.perf_counter()
    requests = [SimRequest.from_dict(p) for p in payloads]
    results: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    fused: List[Tuple[int, SimRequest, TrajectoryTask]] = []
    for i, request in enumerate(requests):
        task = _fused_task_for(request)
        if task is None:
            with sanitizer.trace_scope(request.content_key()):
                results[i] = _execute_payload_inner(request)
            continue
        fused.append((i, request, task))
    t_compile = time.perf_counter()
    if fused:
        task_results = run_request_tasks(
            [task for _, _, task in fused], fuse=True, dedup=True
        )
        t_sim = time.perf_counter()
        compile_ms = (t_compile - t0) * 1000.0
        simulate_ms = (t_sim - t_compile) * 1000.0
        for i, request, task in fused:
            task_result = task_results[task.key]
            counts = task_result.counts
            counts.method = "trajectory"
            if sanitizer.enabled():
                # Mirror the per-request engine's ``counts`` event so
                # fused and unfused traces compare equal on the
                # portable stages (keys are content keys either way).
                sanitizer.record(
                    "counts",
                    {
                        "data": dict(counts.items()),
                        "num_qubits": counts.num_qubits,
                        "method": counts.method,
                    },
                    key=request.content_key(),
                )
            instance = request.instance()
            outcome = evaluate_instance(counts, instance.correct_outcomes())
            correct = sum(
                counts.get(o) for o in instance.correct_outcomes()
            )
            results[i] = {
                "content_key": request.content_key(),
                "counts": {int(k): int(v) for k, v in counts.items()},
                "num_qubits": counts.num_qubits,
                "shots": request.shots,
                "method": counts.method,
                "program_fingerprint": task.program.fingerprint,
                "seed": request.seed,
                "success": bool(outcome.success),
                "min_diff": int(outcome.min_diff),
                "success_probability": correct / max(1, counts.shots),
                # Batch-level costs: compile covers task construction
                # for the whole group, simulate the shared scheduler
                # pass (identical for every member by construction).
                "timings_ms": {
                    "compile": compile_ms,
                    "simulate": simulate_ms,
                },
            }
    return [r for r in results if r is not None]


class SimulationExecutor:
    """Async facade over the worker pool with the retry ladder.

    ``workers=0`` executes in-process on a thread pool (sharing the
    parent's compile/kernel caches — the right mode for tests and
    small deployments); ``workers>0`` uses a process pool, where each
    worker warms its own caches and survives crashes via respawn.
    """

    def __init__(
        self,
        workers: int = 0,
        concurrency: int = 4,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workers = workers
        self.concurrency = concurrency
        self.retry = retry or RetryPolicy(max_attempts=2, timeout=None)
        self.pool_respawns = 0
        self.degraded = False
        self._pool = self._make_pool()

    def _make_pool(self) -> _FuturesExecutor:
        if self.workers > 0 and not self.degraded:
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(
            max_workers=max(1, self.concurrency),
            thread_name_prefix="repro-exec",
        )

    @property
    def mode(self) -> str:
        if self.workers > 0 and not self.degraded:
            return "process"
        return "thread"

    def describe(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "concurrency": self.concurrency,
            "pool_respawns": self.pool_respawns,
            "degraded": self.degraded,
            "max_attempts": self.retry.max_attempts,
            "timeout": self.retry.timeout,
        }

    async def run(self, request: SimRequest) -> Dict[str, Any]:
        """Execute ``request`` with retries; returns the result payload."""
        payload = request.to_dict()
        loop = asyncio.get_running_loop()
        last_error = "unknown"
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                future = loop.run_in_executor(
                    self._pool, _execute_payload, payload
                )
                if self.retry.timeout is not None:
                    result = await asyncio.wait_for(
                        future, self.retry.timeout
                    )
                else:
                    result = await future
                # Worker-side sanitizer events ride home on the result
                # (that is how they cross the process boundary); fold
                # them into the parent trace and keep the response
                # payload tier-independent.
                events = result.pop("sanitizer_events", None)
                if events:
                    sanitizer.merge_events(events)
                return result
            except (RequestValidationError, ValueError):
                # Deterministic input errors cannot succeed on retry.
                raise
            except BrokenProcessPool as exc:
                last_error = f"BrokenProcessPool: {exc}"
                self._respawn()
            except asyncio.TimeoutError:
                last_error = (
                    f"timeout after {self.retry.timeout}s "
                    f"(attempt {attempt})"
                )
            except Exception as exc:  # noqa: BLE001 — ladder mirrors Supervisor
                last_error = f"{type(exc).__name__}: {exc}"
            if attempt < self.retry.max_attempts:
                await asyncio.sleep(self.retry.backoff(attempt))
        raise ExecutionFailed(self.retry.max_attempts, last_error)

    async def run_batch(
        self, requests: List[SimRequest]
    ) -> List[Dict[str, Any]]:
        """Execute a fused micro-batch with the same retry ladder as
        :meth:`run`; returns one result payload per request, in order.

        The whole batch is one unit of work (that is the point — the
        scheduler pass is shared), so the whole batch retries together;
        determinism makes the replay bit-identical per request.
        """
        payloads = [request.to_dict() for request in requests]
        loop = asyncio.get_running_loop()
        last_error = "unknown"
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                future = loop.run_in_executor(
                    self._pool, _execute_fused_batch, payloads
                )
                if self.retry.timeout is not None:
                    doc = await asyncio.wait_for(future, self.retry.timeout)
                else:
                    doc = await future
                events = doc.get("sanitizer_events")
                if events:
                    sanitizer.merge_events(events)
                return list(doc["results"])
            except (RequestValidationError, ValueError):
                raise
            except BrokenProcessPool as exc:
                last_error = f"BrokenProcessPool: {exc}"
                self._respawn()
            except asyncio.TimeoutError:
                last_error = (
                    f"timeout after {self.retry.timeout}s "
                    f"(attempt {attempt})"
                )
            except Exception as exc:  # noqa: BLE001 — ladder mirrors Supervisor
                last_error = f"{type(exc).__name__}: {exc}"
            if attempt < self.retry.max_attempts:
                await asyncio.sleep(self.retry.backoff(attempt))
        raise ExecutionFailed(self.retry.max_attempts, last_error)

    def _respawn(self) -> None:
        """Replace a broken process pool; degrade to threads past budget."""
        try:
            self._pool.shutdown(wait=False)
        except Exception:  # noqa: BLE001 — broken pools may refuse shutdown
            pass
        self.pool_respawns += 1
        if self.pool_respawns > self.retry.max_pool_respawns:
            self.degraded = True
        self._pool = self._make_pool()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)
