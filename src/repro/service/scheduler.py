"""Priority scheduling, admission control, and request coalescing.

The scheduler sits between the HTTP layer and the executor:

1. **Result cache** — a request whose content key is cached returns
   immediately (``cache="hit"``).
2. **Coalescing** — if an identical request (same content key) is
   already queued or executing, the newcomer attaches to its future
   instead of enqueueing a duplicate (``cache="coalesced"``); N
   concurrent identical requests cost exactly one simulation.
3. **Admission control** — the backlog is bounded: at most
   ``concurrency`` jobs executing plus ``max_queue`` waiting.  (The
   bound is on *backlog*, not raw heap depth — a job is counted
   whether a pump has popped it yet or not, so admission is
   deterministic under simultaneous arrivals.)  A full system rejects
   with :class:`AdmissionError` carrying a ``retry_after`` estimate
   (drain time at the observed execution rate), which the server
   surfaces as HTTP 429 + ``Retry-After``.
4. **Priority** — admitted jobs drain lowest-``priority``-value first
   (FIFO within a class via a monotone sequence number).

Draining: :meth:`close` stops admission (503 upstream) while
:meth:`drain` lets already-admitted jobs finish, so a graceful shutdown
never drops accepted work.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .cache import ResultCache
from .executor import SimulationExecutor, fusion_eligible
from .fusion import FusionGate, FusionSaturated
from .metrics import ServiceMetrics
from .model import SimRequest

__all__ = ["AdmissionError", "JobScheduler"]

#: Per-sample clamp feeding the execution-time EWMA: one pathological
#: job (a hang that eventually returned, a cold compile) must not drag
#: the average — and with it every Retry-After estimate — to minutes.
_AVG_EXEC_SAMPLE_CAP = 30.0
#: Ceiling on the advertised Retry-After: beyond this the estimate is
#: noise and clients should just re-poll.
_RETRY_AFTER_CAP = 120.0


class AdmissionError(Exception):
    """Queue full — back off for ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"queue full ({depth} jobs); retry after {retry_after:.1f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


@dataclass(order=True)
class _Job:
    priority: int
    seq: int
    request: SimRequest = field(compare=False)
    future: "asyncio.Future[Dict[str, Any]]" = field(compare=False)
    enqueued_at: float = field(compare=False, default=0.0)


class JobScheduler:
    """Bounded, coalescing priority queue feeding the executor."""

    def __init__(
        self,
        executor: SimulationExecutor,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        max_queue: int = 256,
        concurrency: int = 4,
        fusion: Optional[FusionGate] = None,
    ) -> None:
        self.executor = executor
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_queue = max_queue
        self.concurrency = concurrency
        self.fusion = fusion
        if fusion is not None:
            # Gate batches settle outside the pump loop; this keeps the
            # coalescing map from pinning resolved futures forever.
            fusion.done_hooks.append(
                lambda key: self._inflight.pop(key, None)
            )
        self._heap: list = []
        self._seq = 0
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._running = 0
        self._accepting = True
        self._wakeup: Optional[asyncio.Event] = None
        self._pumps: list = []
        self._started = False
        # EWMA of execution seconds, seeds the retry-after estimate.
        self._avg_exec = 0.05
        self.metrics.register_gauge("queue_depth", lambda: len(self._heap))
        self.metrics.register_gauge("jobs_running", lambda: self._running)
        self.metrics.register_gauge(
            "coalesced_inflight_keys", lambda: len(self._inflight)
        )

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the pump tasks (call from inside the event loop)."""
        if self._started:
            return
        self._wakeup = asyncio.Event()
        self._pumps = [
            asyncio.create_task(self._pump(), name=f"repro-pump-{i}")
            for i in range(self.concurrency)
        ]
        if self.fusion is not None:
            self.fusion.start()
        self._started = True

    def close(self) -> None:
        """Stop admitting new jobs; queued jobs keep draining."""
        self._accepting = False
        if self.fusion is not None:
            # Stop holding fusion windows: pending batches flush now so
            # the drain below only waits on real work.
            self.fusion.close()

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for the queue and every running job to finish."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while (
            self._heap
            or self._running
            or self._inflight
            or (self.fusion is not None and self.fusion.depth())
        ):
            if deadline is not None and time.monotonic() > deadline:
                break
            await asyncio.sleep(0.01)
        if self.fusion is not None:
            await self.fusion.stop()
        for task in self._pumps:
            task.cancel()
        for task in self._pumps:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._pumps = []
        self._started = False

    # -- stats ------------------------------------------------------------
    def queue_stats(self) -> Dict[str, Any]:
        return {
            "depth": len(self._heap),
            "max_queue": self.max_queue,
            "running": self._running,
            "inflight_keys": len(self._inflight),
            "accepting": self._accepting,
            "concurrency": self.concurrency,
            "avg_exec_seconds": self._avg_exec,
            "fusion_pending": (
                self.fusion.depth() if self.fusion is not None else 0
            ),
        }

    def _retry_after(self) -> float:
        """Rough drain time of the current backlog, in [1, cap] seconds."""
        backlog = len(self._heap) + self._running
        return min(
            _RETRY_AFTER_CAP,
            max(1.0, backlog * self._avg_exec / max(1, self.concurrency)),
        )

    # -- submission -------------------------------------------------------
    async def submit(self, request: SimRequest) -> Tuple[Dict[str, Any], str]:
        """Resolve one admitted request.

        Returns ``(payload, source)`` with ``source`` in
        ``{"hit", "coalesced", "fused", "miss"}``.  Raises
        :class:`AdmissionError` on a full queue and ``RuntimeError``
        when the scheduler is closed.
        """
        if not self._accepting:
            raise RuntimeError("scheduler is draining; not accepting jobs")
        if not self._started:
            self.start()
        key = request.content_key()

        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.inc("result_cache_hits_total")
            return cached, "hit"

        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.inc("requests_coalesced_total")
            # A shielded wait: one coalesced caller disconnecting must
            # not cancel the shared simulation.  If the duplicate is
            # still *held* in the fusion gate, register as a waiter so
            # the entry survives the original caller hanging up.
            retained = (
                self.fusion is not None and self.fusion.retain(key)
            )
            try:
                payload = await asyncio.shield(existing)
            except asyncio.CancelledError:
                if retained and self.fusion is not None:
                    if self.fusion.release(key):
                        self._inflight.pop(key, None)
                raise
            return payload, "coalesced"

        if (
            self.fusion is not None
            and self.fusion.enabled
            and fusion_eligible(request)
        ):
            try:
                future = self.fusion.enqueue(request)
            except FusionSaturated as exc:
                self.metrics.inc("requests_rejected_total")
                raise AdmissionError(
                    exc.depth, self._retry_after()
                ) from None
            self._inflight[key] = future
            try:
                payload = await asyncio.shield(future)
            except asyncio.CancelledError:
                # Last waiter gone before the flush: withdraw the entry
                # so the batch never carries orphaned rows.  Post-flush
                # this is a no-op — running batches always complete and
                # cache their results.
                if self.fusion.release(key):
                    self._inflight.pop(key, None)
                raise
            return payload, "fused"

        backlog = len(self._heap) + self._running
        if backlog >= self.max_queue + self.concurrency:
            self.metrics.inc("requests_rejected_total")
            raise AdmissionError(backlog, self._retry_after())

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        self._seq += 1
        job = _Job(
            priority=request.priority,
            seq=self._seq,
            request=request,
            future=future,
            enqueued_at=time.monotonic(),
        )
        heapq.heappush(self._heap, job)
        assert self._wakeup is not None
        self._wakeup.set()
        payload = await asyncio.shield(future)
        return payload, "miss"

    # -- pump -------------------------------------------------------------
    async def _pump(self) -> None:
        assert self._wakeup is not None
        while True:
            while not self._heap:
                self._wakeup.clear()
                await self._wakeup.wait()
            job = heapq.heappop(self._heap)
            self._running += 1
            started = time.monotonic()
            self.metrics.observe("queue_wait", started - job.enqueued_at)
            try:
                payload = await self.executor.run(job.request)
            except Exception as exc:  # noqa: BLE001 — surfaced via future
                if not job.future.done():
                    job.future.set_exception(exc)
                self.metrics.inc(
                    "jobs_failed_total",
                    labels={"error": type(exc).__name__},
                )
            else:
                elapsed = time.monotonic() - started
                self._avg_exec = 0.8 * self._avg_exec + 0.2 * min(
                    elapsed, _AVG_EXEC_SAMPLE_CAP
                )
                self.metrics.observe("execute", elapsed)
                self.metrics.inc("jobs_executed_total")
                self.cache.put(job.request.content_key(), payload)
                if not job.future.done():
                    job.future.set_result(payload)
            finally:
                self._running -= 1
                self._inflight.pop(job.request.content_key(), None)
