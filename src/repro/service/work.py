"""Fabric unit execution inside the arithmetic service (``/v1/work``).

Any ``repro-serve`` process can be a fabric worker: this handler turns a
:func:`~repro.fabric.wire.parse_work_request` payload into results by
running the unit through :func:`~repro.experiments.runner.run_unit` —
the exact code path local sweep workers use, so a unit computes
bit-identical points no matter which venue executes it.

Error contract (what the coordinator's recovery ladder keys on):

* ``400`` — malformed or fingerprint-skewed payload.  Deterministic:
  the coordinator fails the unit instead of retrying.
* ``500`` — execution failed (injected cell faults, numerical-health
  rejections).  Transient from the fabric's point of view: the
  coordinator requeues under its retry policy, matching the local
  supervisor's classification of the same errors.
* ``503`` — the worker is draining; the unit is requeued elsewhere.

Units execute on a thread off the event loop (bounded by
``max_inflight``), so ``/healthz`` keeps answering while a unit runs —
the coordinator can tell "busy" from "dead".

``kill_after_units`` arms the real-process crash used by the chaos
harness: the Nth received unit ``os._exit``\\ s the worker before any
response is written, indistinguishable from an OOM kill mid-unit.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..cut.parallel import FRAGMENT_KINDS
from ..experiments.runner import check_point_health, poison_point, run_unit
from ..experiments.serialize import point_to_dict
from ..fabric.wire import WireError, cell_to_wire, parse_work_request
from ..runtime.faults import CRASH_EXIT_CODE, inject

__all__ = ["WorkHandler"]


class WorkHandler:
    """Execute fabric work units inside a running service."""

    def __init__(
        self,
        max_inflight: int = 1,
        kill_after_units: Optional[int] = None,
    ) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.kill_after_units = kill_after_units
        self.units_received = 0
        self.units_completed = 0
        self.units_rejected = 0
        self.units_failed = 0
        self.cells_completed = 0
        self._sem: Optional[asyncio.Semaphore] = None

    def stats(self) -> Dict[str, Any]:
        return {
            "units_received": self.units_received,
            "units_completed": self.units_completed,
            "units_rejected": self.units_rejected,
            "units_failed": self.units_failed,
            "cells_completed": self.cells_completed,
            "max_inflight": self.max_inflight,
        }

    async def handle(
        self, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Serve one ``POST /v1/work`` body; returns (status, headers, payload)."""
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.units_rejected += 1
            return 400, {}, _json({"error": f"malformed JSON body: {exc}"})
        if (
            isinstance(payload, dict)
            and payload.get("kind") in FRAGMENT_KINDS
        ):
            return await self._handle_fragment(payload)
        try:
            request = parse_work_request(payload)
        except WireError as exc:
            self.units_rejected += 1
            return 400, {}, _json({"error": str(exc)})
        self.units_received += 1
        if (
            self.kill_after_units is not None
            and self.units_received >= self.kill_after_units
        ):
            # The chaos harness's real worker kill: die before replying,
            # exactly as an OOM-killed worker would.
            print(
                f"repro-fabric-worker: injected kill on unit "
                f"{self.units_received}",
                flush=True,
            )
            os._exit(CRASH_EXIT_CODE)
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_inflight)
        async with self._sem:
            try:
                points = await asyncio.get_running_loop().run_in_executor(
                    None, self._execute, request
                )
            except Exception as exc:  # noqa: BLE001 — surfaced as retryable 500
                self.units_failed += 1
                return 500, {}, _json(
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "unit_id": request["unit_id"],
                    }
                )
        self.units_completed += 1
        self.cells_completed += len(points)
        return 200, {}, _json(
            {
                "unit_id": request["unit_id"],
                "attempt": request["attempt"],
                "points": points,
            }
        )

    async def _handle_fragment(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Serve one circuit-cutting fragment job (``kind`` dispatch).

        Fragment jobs share the sweep units' endpoint and error
        contract: malformed payloads are a deterministic 400, execution
        failures a retryable 500 (the cut runner falls back to local
        evaluation on either).
        """
        from ..cut.parallel import execute_wire_job

        self.units_received += 1
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_inflight)
        async with self._sem:
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, execute_wire_job, payload
                )
            except (KeyError, TypeError, ValueError) as exc:
                self.units_rejected += 1
                return 400, {}, _json(
                    {"error": f"bad fragment payload: {exc}"}
                )
            except Exception as exc:  # noqa: BLE001 — surfaced as retryable 500
                self.units_failed += 1
                return 500, {}, _json(
                    {"error": f"{type(exc).__name__}: {exc}"}
                )
        self.units_completed += 1
        return 200, {}, _json(
            {"kind": payload["kind"], "result": result}
        )

    def _execute(self, request: Dict[str, Any]) -> List[List[Any]]:
        """Run the unit's cells (worker thread; blocking)."""
        attempt = request["attempt"]
        poisoned = {
            key
            for key, spec in zip(request["cells"], request["faults"])
            if inject(spec, key, attempt)
        }
        ran = run_unit(request["config"], request["instances"], request["cells"])
        out: List[List[Any]] = []
        for key in request["cells"]:
            point = ran[key]
            if key in poisoned:
                point = poison_point(point)
            check_point_health(point)
            out.append([cell_to_wire(key), point_to_dict(point)])
        return out


def _json(obj: Any) -> bytes:
    return json.dumps(obj).encode()
