"""Shared cache-statistics snapshot for ``/stats`` and the CLI.

One source of truth: the service's ``/stats`` handler and the
``repro-arith cache-stats`` subcommand both call
:func:`cache_stats_snapshot`, so an operator sees identical counter
names whether they scrape a live server or inspect a batch process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from .cache import ResultCache

__all__ = ["cache_stats_snapshot", "render_cache_stats"]


def cache_stats_snapshot(
    result_cache: Optional["ResultCache"] = None,
) -> Dict[str, Any]:
    """Counters for every cache layer in this process.

    * ``compile_cache`` — the two-level lowering/bind cache of
      :mod:`repro.sim.program`;
    * ``kernel_cache`` — the process-wide materialised-kernel LRU;
    * ``program_lru`` — the per-cell memo on
      :func:`repro.experiments.runner.build_compiled_program`;
    * ``ptm_cache`` — the PTM engine's bound-plan cache;
    * ``backend`` — the active :mod:`repro.sim.backend` tier (name,
      dtype, GPU flag, and the requested name when a GPU tier degraded
      to its NumPy fallback);
    * ``cut`` — the circuit-cutting subsystem's counters (plans found,
      fragments compiled, variants evaluated, job routing);
    * ``fusion`` — the cross-request fusion gate's process-wide
      counters (admitted / fused / batches / hit rate / per-tenant
      served cost);
    * ``result_cache`` — the service's content-addressed response
      cache, when one is supplied.

    The ``kernel_cache`` entry includes a ``by_backend`` breakdown
    (hits/misses/entries/bytes per tier) so mixed-precision service
    traffic is observable.
    """
    from ..experiments.runner import (
        build_arithmetic_circuit,
        build_compiled_program,
    )
    from ..runtime.envutil import env_str
    from ..sim.backend import BACKEND_ENV, DEFAULT_BACKEND, active_backend
    from ..cut import cut_stats
    from ..sim.program import compile_cache_stats, kernel_cache_stats
    from ..sim.ptm import ptm_cache_stats
    from .fusion import fusion_stats

    def _lru(fn: Any) -> Dict[str, int]:
        info = fn.cache_info()
        return {
            "hits": info.hits,
            "misses": info.misses,
            "entries": info.currsize,
            "maxsize": info.maxsize,
        }

    backend = active_backend().describe()
    backend["requested"] = env_str(BACKEND_ENV, DEFAULT_BACKEND).lower()
    snapshot: Dict[str, Any] = {
        "backend": backend,
        "compile_cache": compile_cache_stats().as_dict(),
        "kernel_cache": kernel_cache_stats(),
        "ptm_cache": dict(ptm_cache_stats()),
        "cut": dict(cut_stats()),
        "program_lru": _lru(build_compiled_program),
        "circuit_lru": _lru(build_arithmetic_circuit),
        "fusion": fusion_stats(),
    }
    if result_cache is not None:
        snapshot["result_cache"] = result_cache.stats()
    return snapshot


def render_cache_stats(snapshot: Optional[Dict[str, Any]] = None) -> str:
    """Aligned text rendering of a cache snapshot (CLI default view)."""
    if snapshot is None:
        snapshot = cache_stats_snapshot()
    lines: list = []

    def emit(doc: Dict[str, Any], indent: int) -> None:
        pad = "  " * indent
        for name in sorted(doc):
            value = doc[name]
            if isinstance(value, dict):
                lines.append(f"{pad}{name}:")
                emit(value, indent + 1)
            else:
                lines.append(f"{pad}{name:<18} {value}")

    emit({k: v for k, v in snapshot.items() if isinstance(v, dict)}, 0)
    return "\n".join(lines)
