"""Typed request/response model for the arithmetic service.

A :class:`SimRequest` names one simulation: an arithmetic operation,
operand superpositions, an AQFT depth, a noise point, and sampling
parameters.  The model is deliberately broader than the paper's figure
grid — any (operation, operands, depth, noise, shots, seed) combination
within the validation envelope is servable, matching the wider request
space of related adder variants (see PAPERS.md).

Determinism contract
--------------------
``content_key()`` is a content hash over every semantically relevant
field (priority excluded — it affects scheduling, never results).  Two
requests with equal keys produce bit-identical
:class:`~repro.sim.result.Counts`: the executor derives its RNG from
``(seed, content_key)`` alone, so retries, coalesced duplicates, and
repeat submissions all replay the same stream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..runtime.envutil import env_int
from ..runtime.errors import width_limit_error
from ..sim.methods import METHODS
from ..sim.result import Counts

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from ..experiments.instances import ArithmeticInstance

__all__ = [
    "MAX_PRIORITY",
    "MAX_SWEEP_CELLS",
    "MAX_TENANT_LENGTH",
    "RequestValidationError",
    "SimRequest",
    "SimResponse",
    "SweepRequest",
    "service_max_qubits",
]

_OPERATIONS = ("add", "mul")
_ERROR_AXES = ("1q", "2q")
#: Admitted method names come from the single registry — the service
#: schema can never lag behind a newly added engine.
_METHODS = METHODS
_CONVENTIONS = ("qiskit", "pauli")


def _dense_method_cap(method: str) -> Optional[int]:
    """Qubit cap of an explicitly requested dense engine (else None)."""
    if method == "density":
        from ..sim.density import DensityMatrixEngine

        return DensityMatrixEngine.max_qubits
    if method == "ptm":
        from ..sim.ptm import PTMEngine

        return PTMEngine.max_qubits
    return None

MAX_SHOTS = 1_000_000
MAX_TRAJECTORIES = 65_536
MAX_PRIORITY = 9
MAX_DEPTH = 64
MAX_SEED = 2**63 - 1
#: Cells one ``/v1/sweep`` request may carry; wider sweeps split client-side.
MAX_SWEEP_CELLS = 256
#: Tenant identifiers are accounting labels, not payloads.
MAX_TENANT_LENGTH = 64


def service_max_qubits() -> int:
    """Width cap for admitted requests (``REPRO_SERVICE_MAX_QUBITS``).

    The cap bounds the *total* circuit width (``n + m`` for add,
    ``2*(n + m)`` for mul) so a single request cannot exhaust the
    server's memory with a ``2**n`` statevector.
    """
    return env_int("REPRO_SERVICE_MAX_QUBITS", 16, minimum=1)


class RequestValidationError(ValueError):
    """A request failed schema validation; ``errors`` lists every issue."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)


def _as_int(value: Any, name: str, errors: List[str]) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        try:
            coerced = int(value)
        except (TypeError, ValueError):
            errors.append(f"{name}: expected integer, got {value!r}")
            return 0
        if isinstance(value, float) and coerced != value:
            errors.append(f"{name}: expected integer, got {value!r}")
            return 0
        return coerced
    return value


@dataclass(frozen=True)
class SimRequest:
    """One quantum-arithmetic simulation request.

    ``x``/``y`` are operand superpositions: tuples of distinct basis
    values given uniform amplitude (order-1 tuples are classical
    operands).  ``priority`` orders the queue (0 = most urgent) and
    ``tenant`` labels the request for fair-share accounting in the
    fusion tier; both affect scheduling, never results, so both are
    excluded from the content key.
    """

    operation: str
    n: int
    m: int
    x: Tuple[int, ...]
    y: Tuple[int, ...]
    depth: Optional[int] = None
    error_axis: str = "2q"
    error_rate: float = 0.0
    shots: int = 512
    trajectories: int = 32
    method: str = "auto"
    seed: int = 0
    convention: str = "qiskit"
    priority: int = 5
    tenant: str = ""

    # -- derived ----------------------------------------------------------
    @property
    def total_qubits(self) -> int:
        """Full circuit width for this request's operation."""
        if self.operation == "mul":
            return 2 * (self.n + self.m)
        return self.n + self.m

    @cached_property
    def _canonical_json(self) -> str:
        payload = self.canonical_dict()
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def canonical_dict(self) -> Dict[str, Any]:
        """Every result-determining field, canonically ordered.

        Operand tuples are sorted — a uniform superposition is a *set*
        of values, so ``x=(1, 3)`` and ``x=(3, 1)`` are the same request
        and must coalesce.
        """
        return {
            "operation": self.operation,
            "n": self.n,
            "m": self.m,
            "x": sorted(self.x),
            "y": sorted(self.y),
            "depth": self.depth,
            "error_axis": self.error_axis,
            "error_rate": float(self.error_rate),
            "shots": self.shots,
            "trajectories": self.trajectories,
            "method": self.method,
            "seed": self.seed,
            "convention": self.convention,
        }

    def content_key(self) -> str:
        """Content address: sha256 over the canonical request.

        This is the coalescing and result-cache key.  It subsumes the
        compiled program's fingerprint (operation, widths, depth, noise
        point determine the program) plus the operand state, shots,
        method, and the seed policy.
        """
        return hashlib.sha256(self._canonical_json.encode()).hexdigest()[:24]

    def rng_seed(self) -> Tuple[int, int]:
        """Deterministic per-request RNG seed sequence.

        Mixing the content key in ensures distinct requests sharing a
        user seed draw independent streams, while retries and coalesced
        duplicates of *one* request replay bit-identically.
        """
        return (self.seed, int(self.content_key()[:15], 16))

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`RequestValidationError` listing every problem."""
        errors: List[str] = []
        if self.operation not in _OPERATIONS:
            errors.append(
                f"operation: {self.operation!r} not in {_OPERATIONS}"
            )
        if self.n < 1 or self.m < 1:
            errors.append(f"register widths must be >= 1, got n={self.n} m={self.m}")
        elif self.operation in _OPERATIONS:
            cap = service_max_qubits()
            if self.total_qubits > cap:
                errors.append(
                    f"total width {self.total_qubits} exceeds service cap "
                    f"{cap} (REPRO_SERVICE_MAX_QUBITS)"
                )
        if self.depth is not None and not 1 <= self.depth <= MAX_DEPTH:
            errors.append(f"depth: must be in [1, {MAX_DEPTH}] or null")
        if self.error_axis not in _ERROR_AXES:
            errors.append(f"error_axis: {self.error_axis!r} not in {_ERROR_AXES}")
        if not 0.0 <= self.error_rate < 1.0:
            errors.append(f"error_rate: {self.error_rate!r} not in [0, 1)")
        if not 1 <= self.shots <= MAX_SHOTS:
            errors.append(f"shots: must be in [1, {MAX_SHOTS}]")
        if not 1 <= self.trajectories <= MAX_TRAJECTORIES:
            errors.append(f"trajectories: must be in [1, {MAX_TRAJECTORIES}]")
        if self.method not in _METHODS:
            errors.append(f"method: {self.method!r} not in {_METHODS}")
        else:
            # Dense-engine admission: reject at the door, with the same
            # actionable message the engine itself would raise, instead
            # of queueing a request that can only fail (or OOM) later.
            cap = _dense_method_cap(self.method)
            if cap is not None and self.total_qubits > cap:
                errors.append(
                    str(width_limit_error(
                        f"{self.method} service admission",
                        cap,
                        self.total_qubits,
                    ))
                )
        if not 0 <= self.seed <= MAX_SEED:
            errors.append("seed: must be in [0, 2**63)")
        if self.convention not in _CONVENTIONS:
            errors.append(f"convention: {self.convention!r} not in {_CONVENTIONS}")
        if not 0 <= self.priority <= MAX_PRIORITY:
            errors.append(f"priority: must be in [0, {MAX_PRIORITY}]")
        if not isinstance(self.tenant, str):
            errors.append("tenant: expected a string label")
        elif len(self.tenant) > MAX_TENANT_LENGTH:
            errors.append(
                f"tenant: label exceeds {MAX_TENANT_LENGTH} characters"
            )
        if self.n >= 1 and self.m >= 1:
            errors.extend(self._validate_operands())
        if errors:
            raise RequestValidationError(errors)

    def _validate_operands(self) -> List[str]:
        errors: List[str] = []
        for name, values, width in (("x", self.x, self.n), ("y", self.y, self.m)):
            if not values:
                errors.append(f"{name}: operand superposition must be non-empty")
                continue
            if len(set(values)) != len(values):
                errors.append(f"{name}: duplicate values in {list(values)}")
            bad = [v for v in values if not 0 <= int(v) < (1 << width)]
            if bad:
                errors.append(
                    f"{name}: values {bad} out of range for {width} qubits"
                )
        return errors

    # -- (de)serialisation ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able full payload (includes priority)."""
        d = asdict(self)
        d["x"] = list(self.x)
        d["y"] = list(self.y)
        return d

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimRequest":
        """Build and validate a request from a decoded JSON object."""
        if not isinstance(payload, dict):
            raise RequestValidationError(
                [f"request body must be a JSON object, got {type(payload).__name__}"]
            )
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(payload) - known)
        errors: List[str] = []
        if unknown:
            errors.append(f"unknown fields: {unknown}")
        missing = [f for f in ("operation", "n", "m", "x", "y") if f not in payload]
        if missing:
            errors.append(f"missing required fields: {missing}")
        if errors:
            raise RequestValidationError(errors)

        def geti(name: str, default: int) -> int:
            return _as_int(payload.get(name, default), name, errors)

        operation = str(payload["operation"])
        n = geti("n", 0)
        m = geti("m", 0)
        for op_name in ("x", "y"):
            raw = payload[op_name]
            if not isinstance(raw, (list, tuple)):
                errors.append(f"{op_name}: expected a list of integers")
        if errors:
            raise RequestValidationError(errors)
        x = tuple(_as_int(v, "x[]", errors) for v in payload["x"])
        y = tuple(_as_int(v, "y[]", errors) for v in payload["y"])
        depth_raw = payload.get("depth")
        depth = None if depth_raw is None else _as_int(depth_raw, "depth", errors)
        try:
            rate = float(payload.get("error_rate", 0.0))
        except (TypeError, ValueError):
            errors.append("error_rate: expected number")
            rate = 0.0
        req = cls(
            operation=operation,
            n=n,
            m=m,
            x=x,
            y=y,
            depth=depth,
            error_axis=str(payload.get("error_axis", "2q")),
            error_rate=rate,
            shots=geti("shots", 512),
            trajectories=geti("trajectories", 32),
            method=str(payload.get("method", "auto")),
            seed=geti("seed", 0),
            convention=str(payload.get("convention", "qiskit")),
            priority=geti("priority", 5),
            tenant=str(payload.get("tenant", "")),
        )
        if errors:
            raise RequestValidationError(errors)
        req.validate()
        return req

    def instance(self) -> "ArithmeticInstance":
        """The :class:`~repro.experiments.instances.ArithmeticInstance`."""
        from ..core.qint import QInteger
        from ..experiments.instances import ArithmeticInstance

        return ArithmeticInstance(
            self.operation,
            self.n,
            self.m,
            QInteger.uniform(sorted(self.x), self.n),
            QInteger.uniform(sorted(self.y), self.m),
        )


@dataclass
class SimResponse:
    """The service's answer to one :class:`SimRequest`.

    ``cache`` records how the result was obtained: ``"miss"`` (executed
    for this request), ``"coalesced"`` (attached to an identical
    in-flight request), or ``"hit"`` (served from the result cache).
    ``timings_ms`` carries per-stage latencies; cached stages report the
    *original* compile/simulate cost alongside this request's own
    queue/total time.
    """

    content_key: str
    counts: Dict[int, int]
    num_qubits: int
    shots: int
    method: str
    program_fingerprint: str
    seed: int
    success: bool
    min_diff: int
    success_probability: float
    cache: str = "miss"
    timings_ms: Dict[str, float] = field(default_factory=dict)

    def counts_object(self) -> Counts:
        """Rehydrate the payload as a :class:`~repro.sim.result.Counts`."""
        counts = Counts(dict(self.counts), self.num_qubits)
        counts.method = self.method
        return counts

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        # JSON object keys are strings; keep outcomes as decimal strings.
        d["counts"] = {str(k): v for k, v in self.counts.items()}
        return d

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResponse":
        d = dict(payload)
        d["counts"] = {int(k): int(v) for k, v in payload["counts"].items()}
        return cls(**d)


@dataclass(frozen=True)
class SweepRequest:
    """A multi-cell rate sweep over one circuit family (``/v1/sweep``).

    ``base`` carries every :class:`SimRequest` field except the error
    rate; ``rates`` names the cells.  All cells share the base's
    fusion-relevant shape (operation, widths, depth, axis), which is
    exactly what makes a sweep the fusion tier's best customer: its
    cells land in one micro-batch window and ride shared chunks.
    ``tenant``/``priority`` on the sweep override the base's.
    """

    base: SimRequest
    rates: Tuple[float, ...]

    def cells(self) -> List[SimRequest]:
        """One validated :class:`SimRequest` per rate, in rate order."""
        import dataclasses

        return [
            dataclasses.replace(self.base, error_rate=float(rate))
            for rate in self.rates
        ]

    def to_dict(self) -> Dict[str, Any]:
        base = self.base.to_dict()
        base.pop("error_rate", None)
        return {"base": base, "rates": list(self.rates)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepRequest":
        """Build and validate a sweep spec from a decoded JSON object."""
        if not isinstance(payload, dict):
            raise RequestValidationError(
                [
                    "sweep body must be a JSON object, got "
                    f"{type(payload).__name__}"
                ]
            )
        errors: List[str] = []
        unknown = sorted(set(payload) - {"base", "rates", "tenant", "priority"})
        if unknown:
            errors.append(f"unknown fields: {unknown}")
        base_raw = payload.get("base")
        rates_raw = payload.get("rates")
        if not isinstance(base_raw, dict):
            errors.append("base: expected a SimRequest JSON object")
        if not isinstance(rates_raw, (list, tuple)) or not rates_raw:
            errors.append("rates: expected a non-empty list of numbers")
        elif len(rates_raw) > MAX_SWEEP_CELLS:
            errors.append(
                f"rates: {len(rates_raw)} cells exceed the per-request "
                f"cap {MAX_SWEEP_CELLS} (split the sweep client-side)"
            )
        if errors:
            raise RequestValidationError(errors)
        assert isinstance(base_raw, dict) and isinstance(rates_raw, (list, tuple))
        rates: List[float] = []
        for i, raw in enumerate(rates_raw):
            try:
                rate = float(raw)
            except (TypeError, ValueError):
                errors.append(f"rates[{i}]: expected number, got {raw!r}")
                continue
            if not 0.0 <= rate < 1.0:
                errors.append(f"rates[{i}]: {raw!r} not in [0, 1)")
            rates.append(rate)
        if len(set(rates)) != len(rates):
            errors.append("rates: duplicate cells")
        base_payload = dict(base_raw)
        base_payload.setdefault("error_rate", rates[0] if rates else 0.0)
        if "tenant" in payload:
            base_payload["tenant"] = payload["tenant"]
        if "priority" in payload:
            base_payload["priority"] = payload["priority"]
        try:
            base = SimRequest.from_dict(base_payload)
        except RequestValidationError as exc:
            errors.extend(f"base.{e}" for e in exc.errors)
            raise RequestValidationError(errors) from None
        if errors:
            raise RequestValidationError(errors)
        return cls(base=base, rates=tuple(rates))
