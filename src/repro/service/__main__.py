"""``repro-serve`` — run the arithmetic service from the command line.

Examples
--------
Serve on the default port with in-process execution::

    repro-serve --port 8777

A process-pool deployment with tighter admission control::

    repro-serve --workers 4 --max-queue 64 --timeout 30 --max-attempts 3

Enable cross-request fusion (hold eligible requests up to 25 ms and
execute them as shared micro-batches)::

    repro-serve --fusion-window-ms 25

Tuning knobs also honour the environment: ``REPRO_RESULT_CACHE_MB``,
``REPRO_RESULT_CACHE_TTL``, ``REPRO_SERVICE_MAX_QUBITS``,
``REPRO_KERNEL_CACHE_MB``, and the fusion tier's
``REPRO_FUSION_WINDOW_MS`` / ``REPRO_FUSION_MIN_BATCH`` /
``REPRO_FUSION_MAX_BATCH`` / ``REPRO_FUSION_QUANTUM`` /
``REPRO_FUSION_MAX_PENDING`` (see docs/service.md).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from typing import Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Quantum-arithmetic-as-a-service: asyncio HTTP server "
        "over the compiled-program execution stack.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8777)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers (0 = in-process threads, the default)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="simulations in flight at once (queue pump width)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="jobs waiting beyond running capacity before 429 backpressure",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-attempt execution timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="execution attempts per request before 500",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static-analysis admission gate",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let the queue drain on shutdown",
    )
    parser.add_argument(
        "--registry",
        default=None,
        help="fabric registry file to self-register this worker's "
        "host:port in once listening (see docs/distributed.md)",
    )
    parser.add_argument(
        "--fusion-window-ms",
        type=float,
        default=None,
        help="hold eligible requests this long and execute them as "
        "fused micro-batches (0/unset = per-request execution; "
        "defaults to REPRO_FUSION_WINDOW_MS)",
    )
    parser.add_argument(
        "--fusion-min-batch",
        type=int,
        default=None,
        help="flush a fusion group early once it holds this many "
        "requests (defaults to REPRO_FUSION_MIN_BATCH)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from ..runtime.supervisor import RetryPolicy
    from .executor import SimulationExecutor
    from .fusion import FusionGate
    from .server import ArithmeticService

    executor = SimulationExecutor(
        workers=args.workers,
        concurrency=args.concurrency,
        retry=RetryPolicy(max_attempts=args.max_attempts, timeout=args.timeout),
    )
    service = ArithmeticService(
        executor=executor,
        max_queue=args.max_queue,
        concurrency=args.concurrency,
        lint_requests=not args.no_lint,
        fusion=FusionGate(
            executor,
            window_ms=args.fusion_window_ms,
            min_batch=args.fusion_min_batch,
        ),
    )
    host, port = await service.start(args.host, args.port)
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(executor={executor.mode}, concurrency={args.concurrency}, "
        f"max_queue={args.max_queue})",
        flush=True,
    )
    if args.registry:
        from ..fabric.registry import WorkerRegistry

        WorkerRegistry(args.registry).register(host, port)
        print(f"repro-serve: registered {host}:{port} in {args.registry}",
              flush=True)

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)

    serve_task = asyncio.create_task(service.serve_forever())
    stop_task = asyncio.create_task(stop.wait())
    await asyncio.wait(
        {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
    )
    print("repro-serve: draining...", flush=True)
    await service.shutdown(drain=True, timeout=args.drain_timeout)
    serve_task.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await serve_task
    executor.shutdown()
    final = service.final_stats or {}
    served = final.get("metrics", {}).get("counters", {})
    print(
        "repro-serve: bye "
        f"(uptime={final.get('uptime_seconds', 0.0):.1f}s, "
        f"work_units={final.get('work', {}).get('units_completed', 0)}, "
        f"requests={sum(v for k, v in served.items() if k.startswith('http_requests_total'))})",
        flush=True,
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 130


def _entry() -> int:
    """Console-script entry point with SIGPIPE-friendly exit."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(_entry())
