"""Error mitigation (paper §5 future work): readout mitigation + ZNE."""

from .readout import (
    TensoredReadoutMitigator,
    calibration_circuits,
    mitigate_counts,
)
from .zne import richardson_extrapolate, scale_noise_model, zne_expectation

__all__ = [
    "calibration_circuits",
    "TensoredReadoutMitigator",
    "mitigate_counts",
    "scale_noise_model",
    "richardson_extrapolate",
    "zne_expectation",
]
