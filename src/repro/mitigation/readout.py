"""Measurement-error mitigation (paper §5: "the impact of error
mitigation ... deferred to a future work").

Tensored readout mitigation: the measured distribution relates to the
true one through a product of per-qubit assignment matrices,
``p_meas = (A_0 (x) ... (x) A_{n-1}) p_true``.  Two calibration
executions — all qubits prepared |0> and all prepared |1> — estimate
every ``A_q``; inverting them qubit-by-qubit (the same tensor kernels
the simulator uses) recovers a quasi-probability vector, which is
clipped and renormalised in the usual way.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..sim.ops import apply_gate_matrix
from ..sim.result import Counts, Distribution

__all__ = [
    "calibration_circuits",
    "TensoredReadoutMitigator",
    "mitigate_counts",
]


def calibration_circuits(num_qubits: int) -> List[QuantumCircuit]:
    """The two tensored-calibration circuits: |0...0> and |1...1>."""
    zeros = QuantumCircuit(num_qubits)
    zeros.name = "cal_zeros"
    for q in range(num_qubits):
        zeros.id(q)
    ones = QuantumCircuit(num_qubits)
    ones.name = "cal_ones"
    for q in range(num_qubits):
        ones.x(q)
    return [zeros, ones]


class TensoredReadoutMitigator:
    """Per-qubit assignment matrices estimated from calibration counts.

    Parameters
    ----------
    zeros_counts, ones_counts:
        Measured counts of the two :func:`calibration_circuits` runs.
    """

    def __init__(self, zeros_counts: Counts, ones_counts: Counts) -> None:
        if zeros_counts.num_qubits != ones_counts.num_qubits:
            raise ValueError("calibration runs disagree on qubit count")
        n = zeros_counts.num_qubits
        self.num_qubits = n
        self.assignment: List[np.ndarray] = []
        for q in range(n):
            # P(read 1 | prepared 0) from the zeros run, and vice versa.
            p01 = _bit_mean(zeros_counts, q)
            p10 = 1.0 - _bit_mean(ones_counts, q)
            A = np.array([[1 - p01, p10], [p01, 1 - p10]], dtype=float)
            if abs(np.linalg.det(A)) < 1e-6:
                raise ValueError(
                    f"assignment matrix for qubit {q} is singular "
                    f"(p01={p01:.3f}, p10={p10:.3f})"
                )
            self.assignment.append(A)

    @classmethod
    def from_probabilities(
        cls, p01s: Sequence[float], p10s: Optional[Sequence[float]] = None
    ) -> "TensoredReadoutMitigator":
        """Build directly from known flip probabilities (testing aid)."""
        if p10s is None:
            p10s = p01s
        n = len(p01s)
        fake_zero = Counts({0: 1}, n)
        fake_one = Counts({(1 << n) - 1: 1}, n)
        obj = cls(fake_zero, fake_one)
        obj.assignment = [
            np.array([[1 - a, b], [a, 1 - b]], dtype=float)
            for a, b in zip(p01s, p10s)
        ]
        return obj

    def mitigate(self, counts: Counts) -> Distribution:
        """Invert the assignment tensor on the empirical distribution.

        The raw inverse may dip below zero (quasi-probabilities);
        the result is clipped and renormalised.
        """
        if counts.num_qubits != self.num_qubits:
            raise ValueError("counts width does not match mitigator")
        vec = counts.to_array().astype(complex).reshape(1, -1)
        vec /= vec.sum()
        for q, A in enumerate(self.assignment):
            inv = np.linalg.inv(A).astype(complex)
            vec = apply_gate_matrix(vec, inv, (q,), self.num_qubits)
        probs = np.clip(np.real(vec[0]), 0.0, None)
        total = probs.sum()
        if total <= 0:
            raise ValueError("mitigation produced an empty distribution")
        return Distribution(probs / total, self.num_qubits)


def _bit_mean(counts: Counts, q: int) -> float:
    """Fraction of shots with bit ``q`` set."""
    total = counts.shots
    hits = sum(c for outcome, c in counts.items() if (outcome >> q) & 1)
    return hits / total if total else 0.0


def mitigate_counts(
    counts: Counts, mitigator: TensoredReadoutMitigator
) -> Distribution:
    """Convenience wrapper around :meth:`TensoredReadoutMitigator.mitigate`."""
    return mitigator.mitigate(counts)
