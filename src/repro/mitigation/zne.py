"""Zero-noise extrapolation (the other §5 error-mitigation direction).

Measure an observable at several *amplified* noise levels and
extrapolate back to the zero-noise limit.  Hardware amplifies noise by
pulse stretching or gate folding; a simulator can scale the error
parameters directly, which is what :func:`scale_noise_model` does for
Pauli-channel models (each non-identity probability is multiplied by the
scale factor, capped at a valid distribution).

:func:`richardson_extrapolate` fits the standard polynomial through the
(scale, value) points and evaluates it at scale 0;
:func:`zne_expectation` wires the pieces together for any observable of
measured counts (e.g. the probability of the correct arithmetic
outcome).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.channels import PauliError
from ..noise.model import NoiseModel
from ..sim.engines import simulate_counts
from ..sim.result import Counts

__all__ = ["scale_noise_model", "richardson_extrapolate", "zne_expectation"]


def _scale_pauli_error(err: PauliError, factor: float) -> PauliError:
    probs = np.array(err.probs, dtype=float)
    labels = list(err.paulis)
    nontrivial = np.array([set(p) != {"I"} for p in labels])
    scaled = probs.copy()
    scaled[nontrivial] = probs[nontrivial] * factor
    total_err = scaled[nontrivial].sum()
    if total_err >= 1.0:
        # Saturate: renormalise the error part to probability 1.
        scaled[nontrivial] /= total_err
        scaled[~nontrivial] = 0.0
    else:
        scaled[~nontrivial] = (
            probs[~nontrivial]
            / max(probs[~nontrivial].sum(), 1e-300)
            * (1.0 - total_err)
        )
    return PauliError(labels, scaled)


def scale_noise_model(model: NoiseModel, factor: float) -> NoiseModel:
    """A copy of ``model`` with every Pauli channel amplified by ``factor``.

    Only Pauli errors are supported (the paper's depolarizing models);
    readout errors pass through unscaled — ZNE targets gate noise.
    """
    if factor < 0:
        raise ValueError("scale factor must be non-negative")
    out = NoiseModel(name=f"{model.name}*{factor:g}")
    for gate_name, errors in model._all_qubit.items():
        for err in errors:
            if not isinstance(err, PauliError):
                raise ValueError(
                    "scale_noise_model supports Pauli errors only"
                )
            out.add_all_qubit_quantum_error(
                _scale_pauli_error(err, factor), [gate_name]
            )
    for (gate_name, qubits), errors in model._local.items():
        for err in errors:
            if not isinstance(err, PauliError):
                raise ValueError(
                    "scale_noise_model supports Pauli errors only"
                )
            out.add_quantum_error(
                _scale_pauli_error(err, factor), gate_name, qubits
            )
    if model._readout_all is not None:
        out.add_readout_error(model._readout_all)
    for q, ro in model._readout_local.items():
        out.add_readout_error(ro, qubit=q)
    return out


def richardson_extrapolate(
    scales: Sequence[float], values: Sequence[float], order: Optional[int] = None
) -> float:
    """Polynomial extrapolation of (scale, value) samples to scale 0.

    ``order`` defaults to ``len(scales) - 1`` (exact interpolation,
    classic Richardson); a lower order least-squares fit damps noise.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.size != values.size or scales.size < 2:
        raise ValueError("need at least two (scale, value) samples")
    if np.unique(scales).size != scales.size:
        raise ValueError("scales must be distinct")
    if order is None:
        order = scales.size - 1
    if not 1 <= order <= scales.size - 1:
        raise ValueError(f"order {order} invalid for {scales.size} samples")
    coeffs = np.polyfit(scales, values, deg=order)
    return float(np.polyval(coeffs, 0.0))


def zne_expectation(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    observable: Callable[[Counts], float],
    scales: Sequence[float] = (1.0, 2.0, 3.0),
    shots: int = 2048,
    seed: Optional[int] = None,
    order: Optional[int] = None,
    **sim_kwargs,
) -> Tuple[float, List[float]]:
    """ZNE estimate of ``observable`` for ``circuit`` under ``noise_model``.

    Returns ``(extrapolated, per-scale values)``.  Scales must include
    1.0 (the physical noise level) by convention, though any distinct
    positive values work.
    """
    # repro: allow[DET001] reason=public API convenience; the experiment harness always passes a derived integer seed
    rng = np.random.default_rng(seed)
    values = []
    for s in scales:
        scaled = scale_noise_model(noise_model, s)
        counts = simulate_counts(
            circuit, scaled, shots=shots, rng=rng, **sim_kwargs
        )
        values.append(float(observable(counts)))
    return richardson_extrapolate(scales, values, order), values
